//! The external static priority search tree of Lemma 4.1 (\[17\]).
//!
//! "The data structure is essentially a priority search tree where each node
//! contains B points." Every node occupies exactly one disk page holding its
//! control record plus up to `B − 1` points — the `B − 1` largest-`y` points
//! of its subtree, with the remainder split at the median `x` between two
//! children. Hence:
//!
//! * space `O(n/B)` pages,
//! * 3-sided query `O(log2 n + t/B)` I/Os,
//! * bulk build `O((n/B) log_B n)` I/Os (one write per page emitted).

use ccix_extmem::{Geometry, IoCounter, PageId, PathPin, Point, TypedStore};

/// One record on a PST page: the leading control record or a data point.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PstRec {
    /// First record of each page: split key and child pointers.
    Meta {
        /// x-split: points with `xkey ≤ split` are in the left subtree.
        split: (i64, u64),
        /// Left child page.
        left: Option<PageId>,
        /// Right child page.
        right: Option<PageId>,
    },
    /// A data point; stored sorted by `y` descending after the meta record.
    Pt(Point),
}

/// External static priority search tree (Lemma 4.1).
///
/// Answers `x1 ≤ x ≤ x2 ∧ y ≥ y0` in `O(log2 n + t/B)` I/Os on the shared
/// counter. Static: rebuild to change contents (the §3–4 structures rebuild
/// their PSTs during amortised reorganisations).
#[derive(Debug)]
pub struct ExternalPst {
    store: TypedStore<PstRec>,
    root: Option<PageId>,
    len: usize,
    height: usize,
}

impl ExternalPst {
    /// Points stored per node page (`B − 1`; one record is the meta).
    fn node_cap(geo: Geometry) -> usize {
        geo.b - 1
    }

    /// Build from `points` (any order; ids must be unique).
    pub fn build(geo: Geometry, counter: IoCounter, mut points: Vec<Point>) -> Self {
        assert!(geo.b >= 2, "external PST needs B ≥ 2");
        {
            let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");
        }
        let mut store = TypedStore::new(geo.b, counter);
        let len = points.len();
        ccix_extmem::sort_by_x(&mut points);
        let (root, height) = Self::build_rec(&mut store, geo, &mut points);
        Self {
            store,
            root,
            len,
            height,
        }
    }

    /// Build over an x-sorted vector; returns (root page, height).
    fn build_rec(
        store: &mut TypedStore<PstRec>,
        geo: Geometry,
        points: &mut Vec<Point>,
    ) -> (Option<PageId>, usize) {
        if points.is_empty() {
            return (None, 0);
        }
        let k = Self::node_cap(geo).min(points.len());
        // Select the k largest ykeys, removing them while preserving x order.
        let mut ys: Vec<(i64, u64)> = points.iter().map(Point::ykey).collect();
        ys.sort_unstable_by(|a, b| b.cmp(a));
        let threshold = ys[k - 1];
        let mut top: Vec<Point> = Vec::with_capacity(k);
        points.retain(|p| {
            if p.ykey() >= threshold {
                top.push(*p);
                false
            } else {
                true
            }
        });
        debug_assert_eq!(top.len(), k);
        ccix_extmem::sort_by_y_desc(&mut top);

        let (meta, depth) = if points.is_empty() {
            (
                PstRec::Meta {
                    split: (i64::MIN, 0),
                    left: None,
                    right: None,
                },
                1,
            )
        } else {
            let mid = (points.len() - 1) / 2;
            let split = points[mid].xkey();
            let mut right_part = points.split_off(mid + 1);
            let (left, lh) = Self::build_rec(store, geo, points);
            let (right, rh) = Self::build_rec(store, geo, &mut right_part);
            (PstRec::Meta { split, left, right }, 1 + lh.max(rh))
        };
        let mut recs = Vec::with_capacity(k + 1);
        recs.push(meta);
        recs.extend(top.into_iter().map(PstRec::Pt));
        (Some(store.alloc(recs)), depth)
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in nodes (0 when empty).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Disk blocks occupied.
    pub fn space_pages(&self) -> usize {
        self.store.pages_in_use()
    }

    /// The I/O counter shared by this structure.
    pub fn counter(&self) -> &IoCounter {
        self.store.counter()
    }

    /// Report every point with `x1 ≤ x ≤ x2` and `y ≥ y0`.
    pub fn query(&self, x1: i64, x2: i64, y0: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_into(x1, x2, y0, &mut out);
        out
    }

    /// As [`ExternalPst::query`], appending into `out`.
    pub fn query_into(&self, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.visit(root, x1, x2, y0, out);
        }
    }

    /// Diagonal-corner query `x ≤ q ≤ y` (a special case of 3-sided); used
    /// by experiment E12 to compare against the metablock tree.
    pub fn diagonal_into(&self, q: i64, out: &mut Vec<Point>) {
        self.query_into(i64::MIN, q, q, out);
    }

    /// As [`ExternalPst::query_into`] within a pinned operation: node pages
    /// are billed through `pin` under key-space `space`, so a batch of
    /// queries sharing the pin pays for each visited node once per
    /// residency instead of once per query.
    pub fn query_pinned(
        &self,
        pin: &mut PathPin,
        space: u32,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        if x1 > x2 {
            return;
        }
        if let Some(root) = self.root {
            self.visit_pinned(pin, space, root, x1, x2, y0, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_pinned(
        &self,
        pin: &mut PathPin,
        space: u32,
        page: PageId,
        x1: i64,
        x2: i64,
        y0: i64,
        out: &mut Vec<Point>,
    ) {
        let recs = self.store.read_pinned(pin, space, page);
        let PstRec::Meta { split, left, right } = recs[0] else {
            unreachable!("first record of a PST page is always the meta");
        };
        let mut all_above = true;
        for rec in &recs[1..] {
            let PstRec::Pt(p) = rec else {
                unreachable!("data records follow the meta record")
            };
            if p.y < y0 {
                all_above = false;
                break;
            }
            if p.x >= x1 && p.x <= x2 {
                out.push(*p);
            }
        }
        if !all_above {
            return;
        }
        if let Some(l) = left {
            if (x1, u64::MIN) <= split {
                self.visit_pinned(pin, space, l, x1, x2, y0, out);
            }
        }
        if let Some(r) = right {
            if (x2, u64::MAX) > split {
                self.visit_pinned(pin, space, r, x1, x2, y0, out);
            }
        }
    }

    /// Read back every stored point (one I/O per page); used when a dynamic
    /// wrapper rebuilds a PST with newly staged points.
    pub fn collect_points(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<PageId> = self.root.into_iter().collect();
        while let Some(page) = stack.pop() {
            let recs = self.store.read(page);
            let PstRec::Meta { left, right, .. } = recs[0] else {
                unreachable!("first record of a PST page is always the meta");
            };
            for rec in &recs[1..] {
                let PstRec::Pt(p) = rec else {
                    unreachable!("data records follow the meta record")
                };
                out.push(*p);
            }
            stack.extend(left);
            stack.extend(right);
        }
        out
    }

    /// As [`ExternalPst::collect_points`] without charging I/Os (validation
    /// only).
    pub fn collect_points_unbilled(&self) -> Vec<Point> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<PageId> = self.root.into_iter().collect();
        while let Some(page) = stack.pop() {
            let recs = self.store.read_unbilled(page);
            let PstRec::Meta { left, right, .. } = recs[0] else {
                unreachable!("first record of a PST page is always the meta");
            };
            for rec in &recs[1..] {
                let PstRec::Pt(p) = rec else {
                    unreachable!("data records follow the meta record")
                };
                out.push(*p);
            }
            stack.extend(left);
            stack.extend(right);
        }
        out
    }

    fn visit(&self, page: PageId, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let recs = self.store.read(page); // one I/O per visited node
        let PstRec::Meta { split, left, right } = recs[0] else {
            unreachable!("first record of a PST page is always the meta");
        };
        // Points are y-descending: stop at the first below y0. If any stored
        // point is below y0, the subtree below is exhausted (heap property).
        let mut all_above = true;
        for rec in &recs[1..] {
            let PstRec::Pt(p) = rec else {
                unreachable!("data records follow the meta record")
            };
            if p.y < y0 {
                all_above = false;
                break;
            }
            if p.x >= x1 && p.x <= x2 {
                out.push(*p);
            }
        }
        if !all_above {
            return;
        }
        if let Some(l) = left {
            if (x1, u64::MIN) <= split {
                self.visit(l, x1, x2, y0, out);
            }
        }
        if let Some(r) = right {
            if (x2, u64::MAX) > split {
                self.visit(r, x1, x2, y0, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn build(b: usize, pts: &[Point]) -> ExternalPst {
        ExternalPst::build(Geometry::new(b), IoCounter::new(), pts.to_vec())
    }

    fn random_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..n)
            .map(|i| {
                Point::new(
                    (next() % range as u64) as i64,
                    (next() % range as u64) as i64,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn empty_build() {
        let pst = build(4, &[]);
        assert!(pst.is_empty());
        assert_eq!(pst.height(), 0);
        assert!(pst.query(i64::MIN, i64::MAX, i64::MIN).is_empty());
    }

    #[test]
    fn inverted_range_is_empty() {
        let pst = build(4, &[Point::new(0, 0, 1)]);
        assert!(pst.query(5, 3, 0).is_empty());
    }

    #[test]
    fn queries_match_oracle_on_random_sets() {
        for &(n, b) in &[(1usize, 2usize), (7, 2), (100, 4), (1000, 8), (3000, 16)] {
            let pts = random_points(n, 0xC0FFEE + n as u64, 500);
            let pst = build(b, &pts);
            for &(x1, x2, y0) in &[
                (0i64, 499i64, 0i64),
                (100, 300, 250),
                (250, 250, 0),
                (0, 499, 499),
                (400, 499, 400),
            ] {
                let got = pst.query(x1, x2, y0);
                let want = oracle::three_sided(&pts, x1, x2, y0);
                oracle::assert_same_points(got, want, &format!("n={n} b={b} q=({x1},{x2},{y0})"));
            }
        }
    }

    #[test]
    fn space_is_linear_in_n_over_b() {
        let geo = Geometry::new(16);
        let pts = random_points(5000, 7, 10_000);
        let pst = ExternalPst::build(geo, IoCounter::new(), pts);
        let pages = pst.space_pages();
        // Each page holds B−1 = 15 points; allow the tree's slack.
        assert!(pages >= 5000 / 16);
        assert!(pages <= 3 * (5000 / 15) + 3, "pages = {pages}");
    }

    /// Lemma 4.1: query cost `O(log2 n + t/B)`.
    #[test]
    fn query_io_bound() {
        let b = 16;
        let geo = Geometry::new(b);
        let n = 20_000;
        let pts = random_points(n, 99, 100_000);
        let counter = IoCounter::new();
        let pst = ExternalPst::build(geo, counter.clone(), pts.clone());
        for &(x1, x2, y0) in &[
            (0i64, 99_999i64, 0i64),
            (0, 99_999, 95_000),
            (20_000, 30_000, 50_000),
            (50_000, 50_100, 0),
        ] {
            let before = counter.snapshot();
            let got = pst.query(x1, x2, y0);
            let cost = counter.since(before);
            let t = got.len();
            let bound = 4 * (Geometry::log2(n) + geo.out_blocks(t)) + 4;
            assert!(
                cost.reads <= bound as u64,
                "q=({x1},{x2},{y0}): {} reads > bound {bound} (t={t})",
                cost.reads
            );
            assert_eq!(cost.writes, 0);
        }
    }

    #[test]
    fn all_duplicate_coordinates() {
        let pts: Vec<Point> = (0..200).map(|i| Point::new(5, 5, i)).collect();
        let pst = build(4, &pts);
        assert_eq!(pst.query(5, 5, 5).len(), 200);
        assert!(pst.query(5, 5, 6).is_empty());
        assert!(pst.query(6, 7, 0).is_empty());
    }

    #[test]
    fn diagonal_equals_three_sided_special_case() {
        let pts: Vec<Point> = (0..500)
            .map(|i| Point::new(i, i + (i % 37), i as u64))
            .collect();
        let pst = build(8, &pts);
        for q in [0i64, 100, 250, 499, 600] {
            let mut got = Vec::new();
            pst.diagonal_into(q, &mut got);
            let want = oracle::diagonal_corner(&pts, q);
            oracle::assert_same_points(got, want, &format!("diag q={q}"));
        }
    }
}
