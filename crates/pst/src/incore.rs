//! McCreight's in-core priority search tree \[25\].
//!
//! The paper's yardstick for dynamic interval management (§1.4): `O(n)`
//! space, `O(log2 n + t)` query. We implement the classic static variant —
//! the root stores the point with maximum `y`; the remaining points are
//! split at the median `x` into two subtrees — which is all the paper uses
//! it for (the in-core bound to be matched externally).

use ccix_extmem::Point;

/// A static in-core priority search tree over unique-id points.
#[derive(Debug)]
pub struct InCorePst {
    nodes: Vec<Node>,
    root: Option<usize>,
    len: usize,
}

#[derive(Debug)]
struct Node {
    /// The maximum-`(y, id)` point of this subtree.
    top: Point,
    /// x-split: points with `xkey ≤ split` go left, others right.
    split: (i64, u64),
    left: Option<usize>,
    right: Option<usize>,
}

impl InCorePst {
    /// Build from a set of points (any order). `O(n log n)` time.
    ///
    /// # Panics
    /// Panics if two points share an id.
    pub fn build(mut points: Vec<Point>) -> Self {
        let len = points.len();
        let mut ids: Vec<u64> = points.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert!(ids.windows(2).all(|w| w[0] != w[1]), "duplicate point ids");

        ccix_extmem::sort_by_x(&mut points);
        let mut tree = Self {
            nodes: Vec::with_capacity(len),
            root: None,
            len,
        };
        tree.root = tree.build_rec(&mut points);
        tree
    }

    /// Recursively build over an x-sorted slice; extracts the max-y point,
    /// then splits the remainder at the median x.
    fn build_rec(&mut self, points: &mut Vec<Point>) -> Option<usize> {
        if points.is_empty() {
            return None;
        }
        // Extract the top point, keeping x order in the remainder.
        let top_idx = points
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| p.ykey())
            .map(|(i, _)| i)
            .expect("nonempty");
        let top = points.remove(top_idx);
        if points.is_empty() {
            let id = self.nodes.len();
            self.nodes.push(Node {
                top,
                split: top.xkey(),
                left: None,
                right: None,
            });
            return Some(id);
        }
        let mid = (points.len() - 1) / 2;
        let split = points[mid].xkey();
        let mut right_part = points.split_off(mid + 1);
        let left = self.build_rec(points);
        let right = self.build_rec(&mut right_part);
        let id = self.nodes.len();
        self.nodes.push(Node {
            top,
            split,
            left,
            right,
        });
        Some(id)
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Report every point with `x1 ≤ x ≤ x2` and `y ≥ y0`.
    pub fn query(&self, x1: i64, x2: i64, y0: i64) -> Vec<Point> {
        let mut out = Vec::new();
        self.query_into(x1, x2, y0, &mut out);
        out
    }

    /// As [`InCorePst::query`], appending into `out`.
    pub fn query_into(&self, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        if let Some(root) = self.root {
            self.visit(root, x1, x2, y0, out);
        }
    }

    fn visit(&self, idx: usize, x1: i64, x2: i64, y0: i64, out: &mut Vec<Point>) {
        let node = &self.nodes[idx];
        // Heap property: every point below has y ≤ this node's top.
        if node.top.y < y0 {
            return;
        }
        if node.top.x >= x1 && node.top.x <= x2 {
            out.push(node.top);
        }
        // x-BST property on the split key: left subtree ≤ split < right.
        if let Some(l) = node.left {
            if (x1, u64::MIN) <= node.split {
                self.visit(l, x1, x2, y0, out);
            }
        }
        if let Some(r) = node.right {
            if (x2, u64::MAX) > node.split {
                self.visit(r, x1, x2, y0, out);
            }
        }
    }

    /// Stabbing query for interval management: treating each point `(x, y)`
    /// as the interval `[x, y]`, report the intervals containing `q` —
    /// i.e. the 3-sided query `x ≤ q ≤ y` (a 2-sided query, per Fig. 3).
    pub fn stab(&self, q: i64) -> Vec<Point> {
        self.query(i64::MIN, q, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;

    fn grid(w: i64, h: i64) -> Vec<Point> {
        let mut id = 0;
        let mut out = Vec::new();
        for x in 0..w {
            for y in 0..h {
                out.push(Point::new(x, y, id));
                id += 1;
            }
        }
        out
    }

    #[test]
    fn empty_tree() {
        let t = InCorePst::build(vec![]);
        assert!(t.is_empty());
        assert!(t.query(0, 10, 0).is_empty());
    }

    #[test]
    fn single_point() {
        let t = InCorePst::build(vec![Point::new(3, 7, 1)]);
        assert_eq!(t.query(0, 5, 7).len(), 1);
        assert!(t.query(0, 5, 8).is_empty());
        assert!(t.query(4, 5, 0).is_empty());
    }

    #[test]
    fn grid_queries_match_oracle() {
        let pts = grid(12, 12);
        let t = InCorePst::build(pts.clone());
        for (x1, x2, y0) in [(0, 11, 0), (3, 7, 5), (5, 5, 11), (8, 2, 0), (0, 0, 0)] {
            let got = t.query(x1, x2, y0);
            let want = oracle::three_sided(&pts, x1, x2, y0);
            oracle::assert_same_points(got, want, &format!("grid q=({x1},{x2},{y0})"));
        }
    }

    #[test]
    fn duplicate_coordinates_are_supported() {
        let pts: Vec<Point> = (0..50).map(|i| Point::new(1, 2, i)).collect();
        let t = InCorePst::build(pts.clone());
        let got = t.query(1, 1, 2);
        assert_eq!(got.len(), 50);
        assert!(t.query(1, 1, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate point ids")]
    fn duplicate_ids_rejected() {
        let _ = InCorePst::build(vec![Point::new(0, 0, 1), Point::new(1, 1, 1)]);
    }

    #[test]
    fn stab_reports_containing_intervals() {
        // Intervals [0,4], [2,9], [5,6] as points.
        let pts = vec![
            Point::new(0, 4, 1),
            Point::new(2, 9, 2),
            Point::new(5, 6, 3),
        ];
        let t = InCorePst::build(pts);
        let mut ids: Vec<u64> = t.stab(5).iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3]);
        let ids: Vec<u64> = t.stab(0).iter().map(|p| p.id).collect();
        assert_eq!(ids, vec![1]);
    }
}
