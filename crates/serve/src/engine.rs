//! Epoch publication and group-committed writes.
//!
//! The [`Engine`] owns the live index — a [`ShardedIntervalIndex`], which
//! an unsharded [`IntervalIndex`] enters as a single-shard pass-through —
//! on a dedicated writer thread. Writes enter through a bounded submission
//! queue; the writer drains whatever has accumulated into one group,
//! splits every submission into per-shard sub-floods, and applies the
//! whole group **shard-parallel**
//! ([`ShardedIntervalIndex::apply_submissions`]): one worker per shard
//! applies that shard's floods in submission order, then pumps a bounded
//! amount of the shard's own incremental-reorganisation debt. The writer
//! then **publishes** one new epoch for the whole group: a consistent
//! all-shards [`ShardedIntervalIndex::fork_snapshot`] behind an `Arc`,
//! swapped into the engine's published slot. While the queue is empty the
//! writer keeps bleeding reorganisation debt in bounded slices (the *idle
//! pump*), so quiet periods converge to zero debt — observable via
//! [`Engine::reorg_debt`].
//!
//! # Epoch lifecycle and reclamation
//!
//! An epoch is immutable from the moment it is published. Readers obtain a
//! [`Snapshot`] (an `Arc` clone) and query it without any lock; the writer
//! never blocks on readers and readers never block on the writer. The
//! copy-on-write stores mean consecutive epochs share almost every page;
//! a page replaced by a later commit stays alive exactly until the last
//! snapshot that can see it is dropped — `Arc` reference counts *are* the
//! epoch-based reclamation, there is no separate garbage list to pump.
//!
//! # Commit visibility
//!
//! [`Engine::submit`] returns a [`CommitTicket`]. The ticket resolves when
//! the epoch containing that submission has been published — from that
//! moment every [`Engine::snapshot`] observes the write. The delay between
//! submission and resolution is the commit-visibility latency the
//! `exp_throughput` experiment reports at p99.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use ccix_durable::{DurabilityConfig, DurableStore, FsyncPolicy, Meta, RecoveryReport};
use ccix_extmem::{BackendSpec, IoCounter};
use ccix_interval::{Interval, IntervalIndex, IntervalOp, ShardedIntervalIndex};

/// One immutable published version of the index.
///
/// Holds a frozen all-shards [`ShardedIntervalIndex::fork_snapshot`] plus
/// the commit coordinates that identify it: `seq` (number of commits, i.e.
/// publishes) and `ops_applied` (total write operations visible in it —
/// always a whole prefix of the submission stream, since submissions are
/// applied atomically and in order, and published together no matter how
/// many shards they fanned out over).
#[derive(Debug)]
pub struct Epoch {
    index: ShardedIntervalIndex,
    seq: u64,
    ops_applied: u64,
}

/// A shared read handle on one [`Epoch`].
///
/// Cloning is an `Arc` bump; every read method takes `&self` and charges
/// the epoch's own [`IoCounter`], so any number of threads can query the
/// same snapshot concurrently while the writer commits new epochs.
#[derive(Clone, Debug)]
pub struct Snapshot(Arc<Epoch>);

impl Snapshot {
    /// Commit number of the underlying epoch (0 = the initial index,
    /// before any group commit).
    pub fn seq(&self) -> u64 {
        self.0.seq
    }

    /// Total write operations visible in this snapshot. Submissions are
    /// applied whole and in order, so this is always a prefix length of
    /// the submission stream — which is what lets the stress suite replay
    /// an oracle to exactly this snapshot's state.
    pub fn ops_applied(&self) -> u64 {
        self.0.ops_applied
    }

    /// Number of intervals stored.
    pub fn len(&self) -> usize {
        self.0.index.len()
    }

    /// True when no intervals are stored.
    pub fn is_empty(&self) -> bool {
        self.0.index.is_empty()
    }

    /// The epoch's own I/O counter, shared by every shard of the snapshot
    /// (reader traffic never pollutes the writer's accounting).
    pub fn counter(&self) -> &IoCounter {
        self.0.index.shards()[0].counter()
    }

    /// Number of shards behind this snapshot (1 for an unsharded engine).
    pub fn num_shards(&self) -> usize {
        self.0.index.num_shards()
    }

    /// Ids of all intervals containing `q` (see
    /// [`IntervalIndex::stabbing`]).
    pub fn query(&self, q: i64) -> Vec<u64> {
        self.0.index.stabbing(q)
    }

    /// As [`Snapshot::query`], returning full intervals.
    pub fn query_intervals(&self, q: i64) -> Vec<Interval> {
        self.0.index.stabbing_intervals(q)
    }

    /// Batched stabbing queries (see [`IntervalIndex::stab_batch`]).
    pub fn stab_batch(&self, qs: &[i64]) -> Vec<Vec<u64>> {
        self.0.index.stab_batch(qs)
    }

    /// As [`Snapshot::stab_batch`], reusing `outs` (see
    /// [`IntervalIndex::stab_batch_into`]).
    pub fn stab_batch_into(&self, qs: &[i64], outs: &mut Vec<Vec<u64>>) {
        self.0.index.stab_batch_into(qs, outs)
    }

    /// Intervals whose left endpoint lies in `[x1, x2]` (see
    /// [`IntervalIndex::left_range`]).
    pub fn x_range(&self, x1: i64, x2: i64) -> Vec<Interval> {
        self.0.index.left_range(x1, x2)
    }

    /// Ids of all intervals intersecting `[q1, q2]` (see
    /// [`IntervalIndex::intersecting`]).
    pub fn intersecting(&self, q1: i64, q2: i64) -> Vec<u64> {
        self.0.index.intersecting(q1, q2)
    }
}

/// Where a committed submission became visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitInfo {
    /// The publishing epoch's commit number.
    pub seq: u64,
    /// Total operations applied up to and including this submission.
    pub ops_applied: u64,
}

/// Resolves when the submission it was issued for is visible to every new
/// [`Engine::snapshot`].
#[derive(Debug)]
pub struct CommitTicket {
    rx: Receiver<CommitInfo>,
}

impl CommitTicket {
    /// Block until the submission's epoch is published.
    ///
    /// # Panics
    /// Panics if the engine shut down before committing the submission.
    pub fn wait(self) -> CommitInfo {
        self.rx
            .recv()
            .expect("engine dropped uncommitted submission")
    }

    /// Block until the commit resolves, or return `None` if the engine
    /// died (or shut down) without committing the submission — with
    /// durability enabled, that means the write may or may not survive
    /// recovery, but was never acknowledged. The non-panicking wait the
    /// crash suite (and any robust client) uses.
    pub fn wait_result(self) -> Option<CommitInfo> {
        self.rx.recv().ok()
    }
}

/// Writer-side configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Capacity of the bounded submission queue, in submissions.
    /// [`Engine::submit`] blocks when full — backpressure instead of
    /// unbounded memory.
    pub queue_depth: usize,
    /// Upper bound on operations drained into one group commit; a commit
    /// closes early when the queue runs dry.
    pub group_max_ops: usize,
    /// Reorganisation pump budget, in [`IntervalIndex::pump_reorg_step`]
    /// slices, applied **per shard** after each group commit (each shard
    /// worker bleeds its own debt in parallel) and per idle wakeup while
    /// the queue is empty. Bounds the extra publish latency a background
    /// shrink job may add to any single commit.
    pub reorg_pump_slices: usize,
    /// Write-ahead logging and checkpointing. `None` (the default) keeps
    /// the engine fully volatile with byte-identical behaviour to earlier
    /// versions; `Some` makes commit tickets resolve at **durable**
    /// visibility — a resolved ticket survives any crash-and-recover.
    pub durability: Option<DurabilityConfig>,
    /// Page backend for indexes the engine itself constructs — i.e. the
    /// [`Engine::recover`]/[`Engine::recover_sharded`] rebuild (recovery
    /// is logical: checkpoint + WAL replay rebuild the index's contents as
    /// fresh page files under a [`BackendSpec::File`] directory). Ignored
    /// by [`Engine::start`]-family constructors, which take an index the
    /// caller already built on whatever backend it chose (e.g.
    /// `IndexBuilder::file_backed`). Composes with `durability`: the WAL
    /// and checkpoint protocol is identical on both backends.
    pub backend: BackendSpec,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            queue_depth: 64,
            group_max_ops: 4096,
            reorg_pump_slices: 64,
            durability: None,
            backend: BackendSpec::Model,
        }
    }
}

enum Submission {
    Apply(Vec<IntervalOp>, Sender<CommitInfo>),
    /// Publish an epoch even if no ops are pending (a commit barrier).
    Flush(Sender<CommitInfo>),
    Shutdown,
}

/// The serving engine: one writer thread, any number of snapshot readers.
///
/// ```
/// use ccix_extmem::{Geometry, IoCounter};
/// use ccix_interval::{IndexBuilder, Interval, IntervalOp};
/// use ccix_serve::{Engine, EngineConfig};
///
/// let idx = IndexBuilder::new(Geometry::new(16))
///     .bulk(IoCounter::new(), &[Interval::new(1, 5, 7)]);
/// let engine = Engine::start(idx, EngineConfig::default());
/// let ticket = engine.submit(vec![IntervalOp::Insert(Interval::new(2, 9, 8))]);
/// ticket.wait();
/// let snap = engine.snapshot();
/// let mut hits = snap.query(3);
/// hits.sort_unstable();
/// assert_eq!(hits, vec![7, 8]);
/// engine.shutdown();
/// ```
#[derive(Debug)]
pub struct Engine {
    published: Arc<RwLock<Arc<Epoch>>>,
    tx: SyncSender<Submission>,
    /// Mirrors the published epoch's seq for lock-free progress checks.
    seq: Arc<AtomicU64>,
    /// Mirrors the live index's total reorganisation debt (updated by the
    /// writer after every group commit and idle-pump round).
    debt: Arc<AtomicU64>,
    writer: Option<JoinHandle<ShardedIntervalIndex>>,
}

impl Engine {
    /// Take ownership of `index` and start the writer thread, serving it
    /// as a single shard. The initial epoch (seq 0) is published
    /// immediately.
    ///
    /// # Panics
    /// Panics if [`EngineConfig::durability`] is set and initialising the
    /// durable directory fails (use [`Engine::try_start`] to handle the
    /// error, and [`Engine::recover`] for a directory that already holds
    /// state).
    pub fn start(index: IntervalIndex, config: EngineConfig) -> Self {
        Self::try_start(index, config).expect("initialise durable directory")
    }

    /// As [`Engine::start`], but serve an x-range sharded index: each
    /// group commit is split into per-shard sub-floods applied in
    /// parallel, and every epoch snapshots all shards consistently.
    ///
    /// # Panics
    /// As [`Engine::start`].
    pub fn start_sharded(index: ShardedIntervalIndex, config: EngineConfig) -> Self {
        Self::try_start_sharded(index, config).expect("initialise durable directory")
    }

    /// As [`Engine::start`], surfacing durable-directory initialisation
    /// errors instead of panicking. With durability enabled the directory
    /// must be fresh (no WAL): the genesis checkpoint records the index's
    /// construction options and starting content, so a later
    /// [`Engine::recover`] rebuilds it identically.
    pub fn try_start(index: IntervalIndex, config: EngineConfig) -> io::Result<Self> {
        Self::try_start_sharded(ShardedIntervalIndex::from_single(index), config)
    }

    /// As [`Engine::start_sharded`], surfacing durable-directory
    /// initialisation errors instead of panicking. The genesis checkpoint
    /// records the split points alongside the construction options, so a
    /// later [`Engine::recover_sharded`] restores the same sharding.
    pub fn try_start_sharded(
        index: ShardedIntervalIndex,
        config: EngineConfig,
    ) -> io::Result<Self> {
        let durable = match &config.durability {
            None => None,
            Some(dcfg) => {
                let meta = Meta::new(index.geometry(), index.options());
                let content = if index.is_empty() {
                    Vec::new()
                } else {
                    live_content(&index)
                };
                let store = DurableStore::create(dcfg, meta, index.splits(), &content)?;
                Some(store)
            }
        };
        Ok(Self::start_inner(index, config, durable, 0))
    }

    /// Bring an engine up from a durable directory: load the newest valid
    /// checkpoint, rebuild the index it describes (including its recorded
    /// sharding), deterministically replay the WAL suffix through the
    /// routing directory's `apply_batch`, and start serving. A torn or
    /// garbage WAL tail is truncated, never an error. `fallback` supplies
    /// the construction parameters when the directory has no checkpoint
    /// yet (it was never fully initialised — nothing was ever acknowledged
    /// from it); the fallback is unsharded — see
    /// [`Engine::recover_sharded`] to shard a fresh directory.
    ///
    /// # Panics
    /// Panics if [`EngineConfig::durability`] is `None`.
    pub fn recover(fallback: Meta, config: EngineConfig) -> io::Result<(Self, RecoveryReport)> {
        Self::recover_sharded(fallback, &[], config)
    }

    /// As [`Engine::recover`], with explicit fallback split points for the
    /// no-checkpoint case. A directory that does hold a checkpoint always
    /// recovers the sharding it recorded — `fallback_splits` is ignored
    /// then, exactly as `fallback`'s other parameters are.
    pub fn recover_sharded(
        fallback: Meta,
        fallback_splits: &[i64],
        config: EngineConfig,
    ) -> io::Result<(Self, RecoveryReport)> {
        let dcfg = config
            .durability
            .as_ref()
            .expect("Engine::recover requires EngineConfig::durability")
            .clone();
        let (store, recovered) = DurableStore::open_or_create(&dcfg, fallback)?;
        let index = recovered.rebuild_sharded_on(&config.backend, fallback, fallback_splits);
        let ops_applied = recovered.ops_applied();
        let report = recovered.report;
        Ok((
            Self::start_inner(index, config, Some(store), ops_applied),
            report,
        ))
    }

    fn start_inner(
        index: ShardedIntervalIndex,
        config: EngineConfig,
        durable: Option<DurableStore>,
        ops_applied: u64,
    ) -> Self {
        assert!(config.queue_depth > 0, "queue depth must be positive");
        assert!(config.group_max_ops > 0, "group size must be positive");
        let epoch0 = Arc::new(Epoch {
            index: index.fork_snapshot(IoCounter::new()),
            seq: 0,
            ops_applied,
        });
        let published = Arc::new(RwLock::new(epoch0));
        let (tx, rx) = sync_channel(config.queue_depth);
        let seq = Arc::new(AtomicU64::new(0));
        let debt = Arc::new(AtomicU64::new(index.reorg_debt()));
        let writer = {
            let published = Arc::clone(&published);
            let seq = Arc::clone(&seq);
            let debt = Arc::clone(&debt);
            std::thread::Builder::new()
                .name("ccix-serve-writer".into())
                .spawn(move || {
                    writer_loop(
                        index,
                        rx,
                        published,
                        seq,
                        debt,
                        config,
                        durable,
                        ops_applied,
                    )
                })
                .expect("spawn writer thread")
        };
        Self {
            published,
            tx,
            seq,
            debt,
            writer: Some(writer),
        }
    }

    /// Whether the writer thread is still running. `false` after a fatal
    /// durability error (the writer stops acknowledging and exits rather
    /// than acknowledge a commit it cannot make durable).
    pub fn is_alive(&self) -> bool {
        self.writer.as_ref().is_some_and(|h| !h.is_finished())
    }

    /// The newest published epoch as a read handle. Lock held only for the
    /// `Arc` clone.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(Arc::clone(&self.published.read().expect("publish lock")))
    }

    /// Commit number of the newest published epoch, without touching the
    /// publish lock.
    pub fn seq(&self) -> u64 {
        self.seq.load(Relaxed)
    }

    /// Total deferred reorganisation debt across every shard of the live
    /// index, as last reported by the writer (after each group commit and
    /// each idle-pump round). Converges to zero while the queue stays
    /// empty: the writer's idle pump keeps bleeding debt in
    /// [`EngineConfig::reorg_pump_slices`]-bounded rounds between polls
    /// for new work.
    pub fn reorg_debt(&self) -> u64 {
        self.debt.load(Relaxed)
    }

    /// Enqueue a batch of write operations as one atomic submission.
    /// Blocks while the submission queue is full (backpressure). Ops
    /// within the submission must be independent (the
    /// [`IntervalIndex::apply_batch`] contract); independence across
    /// submissions is not required — each is applied as its own flood, in
    /// submission order.
    pub fn submit(&self, ops: Vec<IntervalOp>) -> CommitTicket {
        let (ack, rx) = mpsc::channel();
        self.tx
            .send(Submission::Apply(ops, ack))
            .expect("writer thread gone");
        CommitTicket { rx }
    }

    /// As [`Engine::submit`], but fail fast instead of blocking when the
    /// queue is full. Returns the ops back on `Err`.
    pub fn try_submit(&self, ops: Vec<IntervalOp>) -> Result<CommitTicket, Vec<IntervalOp>> {
        let (ack, rx) = mpsc::channel();
        match self.tx.try_send(Submission::Apply(ops, ack)) {
            Ok(()) => Ok(CommitTicket { rx }),
            Err(TrySendError::Full(Submission::Apply(ops, _))) => Err(ops),
            Err(_) => panic!("writer thread gone"),
        }
    }

    /// As [`Engine::submit`], but return the ops back instead of panicking
    /// when the writer is gone (shut down, or dead after a fatal
    /// durability error).
    pub fn submit_checked(&self, ops: Vec<IntervalOp>) -> Result<CommitTicket, Vec<IntervalOp>> {
        let (ack, rx) = mpsc::channel();
        match self.tx.send(Submission::Apply(ops, ack)) {
            Ok(()) => Ok(CommitTicket { rx }),
            Err(mpsc::SendError(Submission::Apply(ops, _))) => Err(ops),
            Err(_) => unreachable!("send returns the submission it failed to send"),
        }
    }

    /// Commit barrier: resolves once everything submitted before it is
    /// published (and, with durability enabled, durable).
    pub fn flush(&self) -> CommitInfo {
        self.flush_checked().expect("writer thread gone")
    }

    /// As [`Engine::flush`], returning `None` instead of panicking when
    /// the writer is gone.
    pub fn flush_checked(&self) -> Option<CommitInfo> {
        let (ack, rx) = mpsc::channel();
        self.tx.send(Submission::Flush(ack)).ok()?;
        rx.recv().ok()
    }

    /// Stop the writer after it drains everything already queued, and take
    /// the live index back. Safe to call on an engine whose writer already
    /// died of a durability error — the partially-applied index comes
    /// back either way.
    ///
    /// # Panics
    /// Panics on an engine serving more than one shard — take the whole
    /// directory back with [`Engine::shutdown_sharded`] instead.
    pub fn shutdown(self) -> IntervalIndex {
        let mut shards = self.shutdown_sharded().into_shards();
        assert_eq!(
            shards.len(),
            1,
            "shutdown() on a multi-shard engine; use shutdown_sharded()"
        );
        shards.pop().expect("exactly one shard")
    }

    /// As [`Engine::shutdown`], returning the sharded index whole (any
    /// shard count).
    pub fn shutdown_sharded(mut self) -> ShardedIntervalIndex {
        let _ = self.tx.send(Submission::Shutdown);
        self.writer
            .take()
            .expect("writer already joined")
            .join()
            .expect("writer thread panicked")
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if let Some(h) = self.writer.take() {
            let _ = self.tx.send(Submission::Shutdown);
            let _ = h.join();
        }
    }
}

/// Extract the live interval set of `index` (for checkpoints) from a
/// private snapshot, so the scan never charges a published epoch's
/// counter.
fn live_content(index: &ShardedIntervalIndex) -> Vec<Interval> {
    index
        .fork_snapshot(IoCounter::new())
        .left_range(i64::MIN, i64::MAX)
}

/// The writer thread's durable half: WAL + checkpoint store, the acks
/// parked until their covering fsync, and the fsync batching state.
struct DurableState {
    store: DurableStore,
    /// Acks withheld until the WAL records covering them are synced.
    pending: Vec<(Sender<CommitInfo>, CommitInfo)>,
    /// Commits appended since the last fsync (drives `EveryCommits`).
    appended_since_sync: u32,
    /// When the oldest unsynced append happened (drives `Group`'s delay
    /// bound under sustained backlog).
    oldest_unsynced: Option<Instant>,
}

impl DurableState {
    /// Fsync the WAL and release every parked ack. Any error is fatal.
    fn sync_and_release(&mut self) -> std::io::Result<()> {
        self.store.sync()?;
        self.appended_since_sync = 0;
        self.oldest_unsynced = None;
        for (ack, info) in self.pending.drain(..) {
            let _ = ack.send(info);
        }
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn writer_loop(
    mut index: ShardedIntervalIndex,
    rx: Receiver<Submission>,
    published: Arc<RwLock<Arc<Epoch>>>,
    seq: Arc<AtomicU64>,
    debt: Arc<AtomicU64>,
    config: EngineConfig,
    durable: Option<DurableStore>,
    initial_ops: u64,
) -> ShardedIntervalIndex {
    let mut cur_seq = 0u64;
    let mut ops_applied = initial_ops;
    let mut durable = durable.map(|store| DurableState {
        store,
        pending: Vec::new(),
        appended_since_sync: 0,
        oldest_unsynced: None,
    });
    let fsync = config
        .durability
        .as_ref()
        .map(|d| d.fsync)
        .unwrap_or_default();
    'serve: loop {
        // Block for the first submission of the group…
        let first = match rx.try_recv() {
            Ok(s) => s,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => break 'serve,
            Err(std::sync::mpsc::TryRecvError::Empty) => {
                // A group that closed on its op budget skips the
                // drained-empty check inside the drain loop; if the queue
                // is idle now, that same trigger applies — settle the
                // parked acks before blocking, or they wait forever.
                if let Some(d) = durable.as_mut() {
                    if !d.pending.is_empty() && d.sync_and_release().is_err() {
                        return index;
                    }
                }
                // Idle pump: while the queue stays empty, keep bleeding
                // reorganisation debt in bounded shard-parallel rounds,
                // polling for new work between rounds. Quiet periods
                // therefore converge to zero debt instead of carrying it
                // into the next write burst.
                let mut woke = None;
                while index.reorg_debt() > 0 {
                    let remaining = index.pump_reorg(config.reorg_pump_slices);
                    debt.store(remaining, Relaxed);
                    match rx.try_recv() {
                        Ok(s) => {
                            woke = Some(s);
                            break;
                        }
                        Err(std::sync::mpsc::TryRecvError::Disconnected) => break 'serve,
                        Err(std::sync::mpsc::TryRecvError::Empty) => {}
                    }
                }
                match woke {
                    Some(s) => s,
                    None => match rx.recv() {
                        Ok(s) => s,
                        Err(_) => break 'serve, // every Engine handle dropped
                    },
                }
            }
        };
        let mut group_ops = 0usize;
        let mut shutdown = false;
        let mut flush_requested = false;
        let mut drained_empty = false;
        // This group's acks, resolved after its epoch publishes (volatile)
        // or after the covering fsync (durable).
        let mut acks: Vec<(Sender<CommitInfo>, u64)> = Vec::new();
        // The group's submissions, each one sorted flood of its own (the
        // batch-independence contract holds within a submission, not
        // across them). Logged at drain time, applied shard-parallel once
        // the group closes.
        let mut group: Vec<Vec<IntervalOp>> = Vec::new();
        let mut sub = Some(first);
        // …then opportunistically drain what else has queued up, bounded
        // by the group budget: that's the group commit.
        loop {
            match sub.take().expect("submission set each iteration") {
                Submission::Apply(ops, ack) => {
                    if let Some(d) = durable.as_mut() {
                        // Log before apply: the WAL holds every operation
                        // the in-memory index will ever see, so no
                        // acknowledged (or even applied) write can outrun
                        // the log. On a fatal log error, apply the floods
                        // that *did* reach the WAL — the partially-applied
                        // index a later shutdown() hands back must match a
                        // log prefix — then die without acking.
                        if d.store.append_commit(&ops).is_err() {
                            index.apply_submissions(&group, 0);
                            return index;
                        }
                        d.appended_since_sync += 1;
                        d.oldest_unsynced.get_or_insert_with(Instant::now);
                        if let FsyncPolicy::EveryCommits(n) = fsync {
                            if d.appended_since_sync >= n.max(1) && d.store.sync().is_err() {
                                index.apply_submissions(&group, 0);
                                return index;
                            }
                        }
                    }
                    ops_applied += ops.len() as u64;
                    group_ops += ops.len();
                    group.push(ops);
                    acks.push((ack, ops_applied));
                }
                Submission::Flush(ack) => {
                    flush_requested = true;
                    acks.push((ack, ops_applied));
                }
                Submission::Shutdown => shutdown = true,
            }
            if shutdown || group_ops >= config.group_max_ops {
                break;
            }
            match rx.try_recv() {
                Ok(next) => sub = Some(next),
                Err(_) => {
                    drained_empty = true;
                    break;
                }
            }
        }
        // Apply the whole group shard-parallel: every submission splits
        // into per-shard sub-floods, one worker per shard applies its
        // floods in submission order and then pumps a bounded slice of
        // that shard's own reorganisation debt — so background shrink
        // jobs advance concurrently on all shards even while write
        // traffic is saturating, and publish latency stays bounded.
        index.apply_submissions(&group, config.reorg_pump_slices);
        debt.store(index.reorg_debt(), Relaxed);
        // Publish one epoch for the whole group, then resolve its tickets.
        cur_seq += 1;
        let epoch = Arc::new(Epoch {
            index: index.fork_snapshot(IoCounter::new()),
            seq: cur_seq,
            ops_applied,
        });
        *published.write().expect("publish lock") = epoch;
        seq.store(cur_seq, Relaxed);
        match durable.as_mut() {
            None => {
                // Volatile: published == committed; ack immediately.
                for (ack, visible_at) in acks.drain(..) {
                    let _ = ack.send(CommitInfo {
                        seq: cur_seq,
                        ops_applied: visible_at,
                    });
                }
            }
            Some(d) => {
                // Durable: published ≠ committed. Park the acks until the
                // fsync that covers their WAL records.
                for (ack, visible_at) in acks.drain(..) {
                    d.pending.push((
                        ack,
                        CommitInfo {
                            seq: cur_seq,
                            ops_applied: visible_at,
                        },
                    ));
                }
                // Group-commit fsync points: the queue ran dry (nothing
                // to amortise against), an explicit barrier, shutdown,
                // `EveryCommits` leftovers already synced above, or the
                // delay bound expired under sustained backlog.
                let delay_expired = match fsync {
                    FsyncPolicy::Group { max_delay_ms } => d
                        .oldest_unsynced
                        .is_some_and(|t| t.elapsed().as_millis() as u64 >= max_delay_ms),
                    FsyncPolicy::EveryCommits(_) => false,
                };
                if (drained_empty
                    || flush_requested
                    || shutdown
                    || delay_expired
                    || !d.store.has_unsynced())
                    && d.sync_and_release().is_err()
                {
                    return index;
                }
                // Checkpoint at flush/shutdown barriers and every
                // `checkpoint_every_ops` logged operations; each one
                // snapshots the live content and truncates the WAL.
                if flush_requested || shutdown || d.store.wants_checkpoint() {
                    let meta = Meta::new(index.geometry(), index.options());
                    if d.store
                        .checkpoint(meta, index.splits(), &live_content(&index))
                        .is_err()
                    {
                        return index;
                    }
                }
            }
        }
        if shutdown {
            break 'serve;
        }
    }
    // Engine handles all dropped without shutdown: make whatever was
    // appended durable so nothing acknowledged is lost.
    if let Some(d) = durable.as_mut() {
        let _ = d.sync_and_release();
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccix_extmem::Geometry;
    use ccix_interval::IndexBuilder;

    fn ivs(n: usize) -> Vec<Interval> {
        (0..n)
            .map(|i| {
                let lo = (i as i64 * 37) % 400;
                Interval::new(lo, lo + (i as i64 * 13) % 60, i as u64)
            })
            .collect()
    }

    #[test]
    fn snapshots_are_stable_across_commits() {
        let idx = IndexBuilder::new(Geometry::new(8)).bulk(IoCounter::new(), &ivs(200));
        let engine = Engine::start(idx, EngineConfig::default());
        let before = engine.snapshot();
        let expect = before.query(50);
        engine
            .submit(vec![IntervalOp::Insert(Interval::new(0, 399, 10_000))])
            .wait();
        let after = engine.snapshot();
        assert_eq!(before.query(50), expect, "old epoch is frozen");
        assert!(after.query(50).contains(&10_000), "new epoch sees commit");
        assert!(after.seq() > before.seq());
        engine.shutdown();
    }

    #[test]
    fn tickets_resolve_at_visibility() {
        let idx = IndexBuilder::new(Geometry::new(8)).open(IoCounter::new());
        let engine = Engine::start(idx, EngineConfig::default());
        let info = engine
            .submit(vec![
                IntervalOp::Insert(Interval::new(1, 5, 1)),
                IntervalOp::Insert(Interval::new(2, 6, 2)),
            ])
            .wait();
        assert_eq!(info.ops_applied, 2);
        let snap = engine.snapshot();
        assert!(snap.ops_applied() >= info.ops_applied);
        assert_eq!(snap.len(), 2);
        let final_index = engine.shutdown();
        assert_eq!(final_index.len(), 2);
    }

    #[test]
    fn flush_is_a_commit_barrier() {
        let idx = IndexBuilder::new(Geometry::new(8)).open(IoCounter::new());
        let engine = Engine::start(idx, EngineConfig::default());
        for i in 0..10 {
            let _ = engine.submit(vec![IntervalOp::Insert(Interval::new(i, i + 3, i as u64))]);
        }
        let info = engine.flush();
        assert_eq!(info.ops_applied, 10, "flush sees everything before it");
        assert_eq!(engine.snapshot().len(), 10);
        engine.shutdown();
    }
}
