//! Epoch-snapshot serving over the interval index.
//!
//! The core structures ([`ccix_interval::IntervalIndex`] and friends) are
//! single-writer by construction: every mutation takes `&mut self` and the
//! I/O accounting is exact per structure. This crate layers a concurrent
//! serving discipline on top **without touching that model**:
//!
//! 1. **Epochs.** The writer thread owns the live index. After applying a
//!    group of write submissions it *publishes* an [`Epoch`]: an immutable
//!    [`ccix_interval::IntervalIndex::fork_snapshot`] wrapped in an `Arc`
//!    and swapped into a shared slot. Forking is O(control blocks): the
//!    copy-on-write page stores share every unchanged page between the
//!    live index and all published epochs.
//! 2. **Snapshots.** Readers grab [`Snapshot`]s (`Arc` clones of the
//!    newest epoch) and query them lock-free; answers are exact for the
//!    epoch's state, including mid-reorganisation states (the fork carries
//!    the reorg job's delta buffers). Each epoch has its own fresh
//!    [`ccix_extmem::IoCounter`], so reader traffic never perturbs the
//!    writer's accounting — the single-threaded I/O tables stay
//!    bit-identical with this crate in the picture.
//! 3. **Reclamation.** A page replaced by a later commit lives exactly as
//!    long as the last epoch that can see it: dropping the last `Arc` to
//!    an epoch frees its unshared pages. Reference counts *are* the
//!    epoch-based reclamation; there is no deferred-free list to tend.
//! 4. **Group commit.** Writes enter a bounded queue ([`Engine::submit`])
//!    and are drained in groups; each submission is applied as its own
//!    sorted [`ccix_interval::IntervalIndex::apply_batch`] flood (the
//!    batch-independence contract holds *within* a submission), deferred
//!    reorganisation debt is pumped a bounded amount, and one epoch is
//!    published per group. [`CommitTicket::wait`] resolves at publication
//!    — the commit-visibility point.
//! 5. **Front end.** [`Server`] exposes the engine over TCP with a
//!    length-prefixed binary protocol ([`net`] module docs) using only
//!    `std`: one acceptor plus a fixed worker pool. [`Client`] is the
//!    matching blocking client.
//! 6. **Durability.** With [`EngineConfig::durability`] set, every
//!    submission is appended to a write-ahead log *before* it is applied,
//!    and its [`CommitTicket`] resolves only after the covering fsync:
//!    a resolved ticket survives any crash. [`Engine::recover`] rebuilds
//!    from the newest checkpoint plus a deterministic WAL replay (see
//!    `ccix_durable`). Durability off (the default) leaves the engine
//!    byte-identical to earlier versions.
//!
//! ```
//! use ccix_extmem::{Geometry, IoCounter};
//! use ccix_interval::{IndexBuilder, Interval, IntervalOp};
//! use ccix_serve::{Engine, EngineConfig};
//!
//! let idx = IndexBuilder::new(Geometry::new(16))
//!     .bulk(IoCounter::new(), &[Interval::new(1, 5, 7)]);
//! let engine = Engine::start(idx, EngineConfig::default());
//!
//! // Readers hold a consistent view while the writer commits.
//! let snap = engine.snapshot();
//! engine.submit(vec![IntervalOp::Insert(Interval::new(2, 6, 8))]).wait();
//! assert_eq!(snap.query(3), vec![7]); // old epoch: frozen
//! assert_eq!(engine.snapshot().query(3).len(), 2); // new epoch: visible
//! engine.shutdown();
//! ```

pub mod engine;
pub mod net;

pub use ccix_durable::{DurabilityConfig, FsyncPolicy, Meta, RecoveryReport};
pub use engine::{CommitInfo, CommitTicket, Engine, EngineConfig, Epoch, Snapshot};
pub use net::{Client, ConnectOpts, Server, ServerHandle};
