//! Std-only TCP front end over the [`Engine`].
//!
//! # Wire protocol
//!
//! Length-prefixed binary frames, all integers little-endian:
//!
//! ```text
//! request:  [len: u32][opcode: u8][payload: len-1 bytes]
//! response: [len: u32][status: u8][payload: len-1 bytes]
//! ```
//!
//! `status` is [`STATUS_OK`] or [`STATUS_ERR`]; an error payload is
//! `[code: u8][message: UTF-8]` with `code` one of the `ERR_*` constants,
//! so clients can distinguish a malformed frame ([`ERR_BAD_FRAME`]), a
//! well-framed but invalid request ([`ERR_BAD_REQUEST`]) and an engine
//! that is gone ([`ERR_UNAVAILABLE`]). Malformed and oversized requests
//! are answered with a typed error frame and the connection **stays
//! open** — one bad client request never tears down a connection that
//! may have pipelined good ones behind it. Oversized frames are
//! discarded from the stream without buffering them.
//! Opcodes and payloads:
//!
//! | opcode | request payload | ok payload |
//! |---|---|---|
//! | [`OP_STAB`] | `q: i64` | `count: u32`, then `count` × `id: u64` |
//! | [`OP_STAB_BATCH`] | `n: u32`, then `n` × `q: i64` | `n` × (`count: u32`, `count` × `id: u64`) |
//! | [`OP_XRANGE`] | `x1: i64, x2: i64` | `count: u32`, then `count` × (`lo: i64, hi: i64, id: u64`) |
//! | [`OP_APPLY`] | `n: u32`, then `n` × op (`tag: u8` 0=insert 1=delete, then `lo: i64, hi: i64, id: u64`) | `seq: u64, ops_applied: u64` |
//! | [`OP_EPOCH`] | empty | `seq: u64, ops_applied: u64, len: u64` |
//! | [`OP_PING`] | empty | empty |
//!
//! `OP_APPLY` replies only after its [`crate::CommitTicket`] resolves, so a
//! client that has seen the reply is guaranteed every later query (on any
//! connection) observes the write — the commit-visibility rule of the
//! engine carried over the wire.
//!
//! Each worker takes a [`Engine::snapshot`] per request, so a client
//! pipelining queries always reads a consistent epoch per request and
//! advances automatically as the writer publishes.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use ccix_interval::{Interval, IntervalOp};

use crate::engine::{CommitInfo, Engine};

/// Stabbing query: ids of intervals containing a point.
pub const OP_STAB: u8 = 1;
/// Batched stabbing queries.
pub const OP_STAB_BATCH: u8 = 2;
/// Left-endpoint range report.
pub const OP_XRANGE: u8 = 3;
/// Submit a write batch; replies at commit visibility.
pub const OP_APPLY: u8 = 4;
/// Report the newest published epoch's coordinates.
pub const OP_EPOCH: u8 = 5;
/// Liveness check.
pub const OP_PING: u8 = 6;

/// Request handled successfully.
pub const STATUS_OK: u8 = 0;
/// Request failed; payload is `[code: u8][UTF-8 message]`.
pub const STATUS_ERR: u8 = 1;

/// Error code: unframeable request (zero-length or over [`MAX_FRAME`]).
pub const ERR_BAD_FRAME: u8 = 1;
/// Error code: well-framed request that does not decode or validate.
pub const ERR_BAD_REQUEST: u8 = 2;
/// Error code: the engine is gone (shut down, or dead after a fatal
/// durability error) — retrying on this connection cannot succeed.
pub const ERR_UNAVAILABLE: u8 = 3;

/// Largest accepted frame (sanity bound against corrupt length prefixes).
pub const MAX_FRAME: u32 = 64 << 20;

/// A running server: one acceptor thread plus a fixed worker pool sharing
/// an [`Engine`]. Obtained from [`Server::start`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Live connections, so shutdown can unblock workers parked in reads.
    conns: Arc<Mutex<Vec<TcpStream>>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with a `:0` request).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the workers, and join all threads. Open
    /// connections are closed after their in-flight request.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        self.stop.store(true, SeqCst);
        // The acceptor blocks in accept(); a throwaway local connection
        // wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Unblock workers parked in a read on a still-open connection:
        // shutting the socket makes their read return EOF. Entries for
        // already-closed connections just error harmlessly.
        for conn in self.conns.lock().expect("conn registry lock").drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The TCP front end. See the module docs for the wire protocol.
pub struct Server;

impl Server {
    /// Bind `addr` and serve `engine` with `workers` handler threads.
    ///
    /// ```
    /// use ccix_extmem::{Geometry, IoCounter};
    /// use ccix_interval::{IndexBuilder, Interval, IntervalOp};
    /// use ccix_serve::{Client, Engine, EngineConfig, Server};
    ///
    /// let idx = IndexBuilder::new(Geometry::new(16)).open(IoCounter::new());
    /// let engine = Engine::start(idx, EngineConfig::default());
    /// let server = Server::start(engine, "127.0.0.1:0", 2).unwrap();
    /// let mut client = Client::connect(server.local_addr()).unwrap();
    /// client.apply(&[IntervalOp::Insert(Interval::new(1, 5, 7))]).unwrap();
    /// assert_eq!(client.stab(3).unwrap(), vec![7]);
    /// server.shutdown();
    /// ```
    pub fn start(
        engine: Engine,
        addr: impl ToSocketAddrs,
        workers: usize,
    ) -> io::Result<ServerHandle> {
        assert!(workers > 0, "need at least one worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let engine = Arc::new(engine);
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let worker_handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let engine = Arc::clone(&engine);
                let conns = Arc::clone(&conns);
                std::thread::Builder::new()
                    .name(format!("ccix-serve-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the queue lock only for the recv itself.
                        let conn = match rx.lock().expect("conn queue lock").recv() {
                            Ok(c) => c,
                            Err(_) => return, // acceptor gone: drain done
                        };
                        // Register so shutdown can sever a parked read.
                        if let Ok(clone) = conn.try_clone() {
                            conns.lock().expect("conn registry lock").push(clone);
                        }
                        let _ = serve_connection(conn, &engine);
                    })
                    .expect("spawn worker")
            })
            .collect();
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ccix-serve-acceptor".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(SeqCst) {
                            break;
                        }
                        if let Ok(conn) = conn {
                            // Workers exit only after this sender drops.
                            let _ = conn_tx.send(conn);
                        }
                    }
                })
                .expect("spawn acceptor")
        };
        Ok(ServerHandle {
            addr,
            stop,
            conns,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

/// Handle one connection until the peer closes it. Malformed or
/// oversized frames are answered with a typed error frame and the
/// connection keeps serving; only transport errors (and clean closes)
/// end the loop.
fn serve_connection(mut conn: TcpStream, engine: &Engine) -> io::Result<()> {
    conn.set_nodelay(true)?;
    let mut req = Vec::new();
    loop {
        let resp = match read_frame(&mut conn, &mut req)? {
            FrameRead::Closed => return Ok(()), // clean close between frames
            FrameRead::Frame => match handle_request(&req, engine) {
                Ok(body) => frame(STATUS_OK, &body),
                Err((code, msg)) => error_frame(code, &msg),
            },
            FrameRead::Unframeable(len) => {
                // The declared payload is discarded (never buffered), the
                // client gets a typed error, and the stream stays usable:
                // the length prefix told us exactly where the next frame
                // starts.
                discard_exact(&mut conn, len as u64)?;
                error_frame(
                    ERR_BAD_FRAME,
                    &format!("bad frame length {len} (cap {MAX_FRAME})"),
                )
            }
        };
        conn.write_all(&resp)?;
    }
}

/// Dispatch one decoded request frame (`[opcode][payload]`). Errors are
/// `(ERR_* code, message)` pairs for the typed error frame.
fn handle_request(req: &[u8], engine: &Engine) -> Result<Vec<u8>, (u8, String)> {
    let bad = |msg: String| (ERR_BAD_REQUEST, msg);
    let (&opcode, payload) = req.split_first().ok_or_else(|| bad("empty frame".into()))?;
    let mut r = Reader(payload);
    let mut body = Vec::new();
    match opcode {
        OP_STAB => {
            let q = r.i64().map_err(bad)?;
            r.done().map_err(bad)?;
            let ids = engine.snapshot().query(q);
            put_u32(&mut body, ids.len());
            for id in ids {
                body.extend_from_slice(&id.to_le_bytes());
            }
        }
        OP_STAB_BATCH => {
            let n = r.u32().map_err(bad)? as usize;
            let mut qs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                qs.push(r.i64().map_err(bad)?);
            }
            r.done().map_err(bad)?;
            for ids in engine.snapshot().stab_batch(&qs) {
                put_u32(&mut body, ids.len());
                for id in ids {
                    body.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        OP_XRANGE => {
            let (x1, x2) = (r.i64().map_err(bad)?, r.i64().map_err(bad)?);
            r.done().map_err(bad)?;
            let ivs = engine.snapshot().x_range(x1, x2);
            put_u32(&mut body, ivs.len());
            for iv in ivs {
                body.extend_from_slice(&iv.lo.to_le_bytes());
                body.extend_from_slice(&iv.hi.to_le_bytes());
                body.extend_from_slice(&iv.id.to_le_bytes());
            }
        }
        OP_APPLY => {
            let n = r.u32().map_err(bad)? as usize;
            let mut ops = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let tag = r.u8().map_err(bad)?;
                let (lo, hi) = (r.i64().map_err(bad)?, r.i64().map_err(bad)?);
                let id = r.u64().map_err(bad)?;
                // Validate before constructing: `Interval::new` panics on
                // inverted endpoints, and a hostile frame must not be able
                // to panic a worker.
                if hi < lo {
                    return Err(bad(format!("inverted interval [{lo}, {hi}]")));
                }
                let iv = Interval::new(lo, hi, id);
                ops.push(match tag {
                    0 => IntervalOp::Insert(iv),
                    1 => IntervalOp::Delete(iv),
                    t => return Err(bad(format!("bad op tag {t}"))),
                });
            }
            r.done().map_err(bad)?;
            // Reply only once the commit is visible to every snapshot
            // (and durable, when durability is on). A dead engine is a
            // typed error, not a worker panic.
            let unavailable = || (ERR_UNAVAILABLE, "engine is gone".to_string());
            let ticket = engine.submit_checked(ops).map_err(|_| unavailable())?;
            let info: CommitInfo = ticket.wait_result().ok_or_else(unavailable)?;
            body.extend_from_slice(&info.seq.to_le_bytes());
            body.extend_from_slice(&info.ops_applied.to_le_bytes());
        }
        OP_EPOCH => {
            r.done().map_err(bad)?;
            let snap = engine.snapshot();
            body.extend_from_slice(&snap.seq().to_le_bytes());
            body.extend_from_slice(&snap.ops_applied().to_le_bytes());
            body.extend_from_slice(&(snap.len() as u64).to_le_bytes());
        }
        OP_PING => r.done().map_err(bad)?,
        op => return Err(bad(format!("bad opcode {op}"))),
    }
    Ok(body)
}

/// Connection policy for [`Client::connect_with`].
#[derive(Clone, Copy, Debug)]
pub struct ConnectOpts {
    /// Total connect attempts (≥ 1). Transient failures — refused, reset,
    /// timed out — are retried with linear backoff; anything else fails
    /// immediately.
    pub attempts: u32,
    /// Backoff after the first failed attempt; attempt `k` waits
    /// `k × backoff`.
    pub backoff: std::time::Duration,
    /// Read timeout on the connected socket (`None` = block forever).
    /// A durable `apply` can legitimately wait for a group fsync, so the
    /// default leaves reads unbounded; set one when talking to servers
    /// that may silently die.
    pub read_timeout: Option<std::time::Duration>,
}

impl Default for ConnectOpts {
    fn default() -> Self {
        Self {
            attempts: 3,
            backoff: std::time::Duration::from_millis(20),
            read_timeout: None,
        }
    }
}

/// Blocking client for the wire protocol. One request in flight at a time.
#[derive(Debug)]
pub struct Client {
    conn: TcpStream,
    buf: Vec<u8>,
}

fn transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
    )
}

impl Client {
    /// Connect to a [`Server`] with the default [`ConnectOpts`] (three
    /// attempts, 20 ms linear backoff, no read timeout).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, ConnectOpts::default())
    }

    /// Connect with explicit retry/backoff/timeout policy. Retries only
    /// transient connect failures (refused/reset/aborted/timed out), so a
    /// server still binding its listener doesn't cost the caller an
    /// error, while a hard failure (unreachable, permission) surfaces at
    /// once.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: ConnectOpts) -> io::Result<Self> {
        let attempts = opts.attempts.max(1);
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(opts.backoff * attempt);
            }
            match TcpStream::connect(&addr) {
                Ok(conn) => {
                    conn.set_nodelay(true)?;
                    conn.set_read_timeout(opts.read_timeout)?;
                    return Ok(Self {
                        conn,
                        buf: Vec::new(),
                    });
                }
                Err(e) if transient(e.kind()) && attempt + 1 < attempts => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last_err.expect("at least one attempt"))
    }

    fn call(&mut self, opcode: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
        let mut req = Vec::with_capacity(payload.len() + 5);
        req.extend_from_slice(&(payload.len() as u32 + 1).to_le_bytes());
        req.push(opcode);
        req.extend_from_slice(payload);
        self.conn.write_all(&req)?;
        match read_frame(&mut self.conn, &mut self.buf)? {
            FrameRead::Frame => {}
            FrameRead::Closed => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed connection",
                ))
            }
            FrameRead::Unframeable(len) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad reply frame length {len}"),
                ))
            }
        }
        match self.buf.split_first() {
            Some((&STATUS_OK, body)) => Ok(body.to_vec()),
            Some((&STATUS_ERR, err)) => {
                let (code, msg) = match err.split_first() {
                    Some((&code, msg)) => (code, String::from_utf8_lossy(msg).into_owned()),
                    None => (0, "unspecified error".to_string()),
                };
                let kind = match code {
                    ERR_BAD_FRAME | ERR_BAD_REQUEST => io::ErrorKind::InvalidInput,
                    ERR_UNAVAILABLE => io::ErrorKind::ConnectionAborted,
                    _ => io::ErrorKind::Other,
                };
                Err(io::Error::new(kind, format!("server error {code}: {msg}")))
            }
            _ => Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame")),
        }
    }

    /// Ids of intervals containing `q`.
    pub fn stab(&mut self, q: i64) -> io::Result<Vec<u64>> {
        let body = self.call(OP_STAB, &q.to_le_bytes())?;
        let mut r = Reader(&body);
        decode_ids(&mut r).map_err(bad_reply)
    }

    /// Batched stabbing queries; answers in input order.
    pub fn stab_batch(&mut self, qs: &[i64]) -> io::Result<Vec<Vec<u64>>> {
        let mut payload = Vec::with_capacity(4 + 8 * qs.len());
        put_u32(&mut payload, qs.len());
        for q in qs {
            payload.extend_from_slice(&q.to_le_bytes());
        }
        let body = self.call(OP_STAB_BATCH, &payload)?;
        let mut r = Reader(&body);
        let mut out = Vec::with_capacity(qs.len());
        for _ in 0..qs.len() {
            out.push(decode_ids(&mut r).map_err(bad_reply)?);
        }
        Ok(out)
    }

    /// Intervals with left endpoint in `[x1, x2]`.
    pub fn x_range(&mut self, x1: i64, x2: i64) -> io::Result<Vec<Interval>> {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&x1.to_le_bytes());
        payload.extend_from_slice(&x2.to_le_bytes());
        let body = self.call(OP_XRANGE, &payload)?;
        let mut r = Reader(&body);
        let n = r.u32().map_err(bad_reply)? as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let (lo, hi) = (r.i64().map_err(bad_reply)?, r.i64().map_err(bad_reply)?);
            out.push(Interval::new(lo, hi, r.u64().map_err(bad_reply)?));
        }
        Ok(out)
    }

    /// Submit a write batch; returns once the commit is visible.
    pub fn apply(&mut self, ops: &[IntervalOp]) -> io::Result<CommitInfo> {
        let mut payload = Vec::with_capacity(4 + 25 * ops.len());
        put_u32(&mut payload, ops.len());
        for op in ops {
            let (tag, iv) = match *op {
                IntervalOp::Insert(iv) => (0, iv),
                IntervalOp::Delete(iv) => (1, iv),
            };
            payload.push(tag);
            payload.extend_from_slice(&iv.lo.to_le_bytes());
            payload.extend_from_slice(&iv.hi.to_le_bytes());
            payload.extend_from_slice(&iv.id.to_le_bytes());
        }
        let body = self.call(OP_APPLY, &payload)?;
        let mut r = Reader(&body);
        Ok(CommitInfo {
            seq: r.u64().map_err(bad_reply)?,
            ops_applied: r.u64().map_err(bad_reply)?,
        })
    }

    /// `(seq, ops_applied, len)` of the newest published epoch.
    pub fn epoch(&mut self) -> io::Result<(u64, u64, u64)> {
        let body = self.call(OP_EPOCH, &[])?;
        let mut r = Reader(&body);
        Ok((
            r.u64().map_err(bad_reply)?,
            r.u64().map_err(bad_reply)?,
            r.u64().map_err(bad_reply)?,
        ))
    }

    /// Liveness round-trip.
    pub fn ping(&mut self) -> io::Result<()> {
        self.call(OP_PING, &[]).map(|_| ())
    }
}

/// Outcome of reading one frame header + body.
enum FrameRead {
    /// A frame landed in `buf`.
    Frame,
    /// Peer closed cleanly before a new frame started.
    Closed,
    /// The header declared an unserviceable length (0 or over
    /// [`MAX_FRAME`]); the payload has **not** been consumed.
    Unframeable(u32),
}

/// Read one `[len: u32][body]` frame into `buf`.
fn read_frame(conn: &mut TcpStream, buf: &mut Vec<u8>) -> io::Result<FrameRead> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match conn.read(&mut len[got..])? {
            0 if got == 0 => return Ok(FrameRead::Closed),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "truncated frame header",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Ok(FrameRead::Unframeable(len));
    }
    buf.clear();
    buf.resize(len as usize, 0);
    conn.read_exact(buf)?;
    Ok(FrameRead::Frame)
}

/// Consume and drop `n` bytes from the stream (an oversized frame's
/// payload) without ever buffering more than a small window.
fn discard_exact(conn: &mut TcpStream, mut n: u64) -> io::Result<()> {
    let mut sink = [0u8; 8192];
    while n > 0 {
        let want = sink.len().min(n as usize);
        match conn.read(&mut sink[..want])? {
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-discard",
                ))
            }
            m => n -= m as u64,
        }
    }
    Ok(())
}

fn error_frame(code: u8, msg: &str) -> Vec<u8> {
    let mut body = Vec::with_capacity(msg.len() + 1);
    body.push(code);
    body.extend_from_slice(msg.as_bytes());
    frame(STATUS_ERR, &body)
}

fn frame(status: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 5);
    out.extend_from_slice(&(body.len() as u32 + 1).to_le_bytes());
    out.push(status);
    out.extend_from_slice(body);
    out
}

fn put_u32(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&u32::try_from(n).expect("frame element count").to_le_bytes());
}

fn decode_ids(r: &mut Reader<'_>) -> Result<Vec<u64>, String> {
    let n = r.u32()? as usize;
    let mut ids = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        ids.push(r.u64()?);
    }
    Ok(ids)
}

fn bad_reply(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Cursor over a request/response payload.
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.0.len() < n {
            return Err("truncated payload".into());
        }
        let (head, rest) = self.0.split_at(n);
        self.0 = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err("trailing bytes in payload".into())
        }
    }
}
