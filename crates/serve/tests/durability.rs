//! Durable-engine edge cases around flush, shutdown, and the sparse
//! directory states recovery must handle — the quiet corners the
//! kill-point suite (`crash.rs`) only hits probabilistically.

use ccix_durable::{DurabilityConfig, TempDir};
use ccix_extmem::{Geometry, IoCounter};
use ccix_interval::{IndexBuilder, Interval, IntervalOp, IntervalOptions};
use ccix_serve::{Engine, EngineConfig, FsyncPolicy, Meta};

fn geometry() -> Geometry {
    Geometry::new(8)
}

fn meta() -> Meta {
    Meta::new(geometry(), IntervalOptions::default())
}

fn config(dir: &std::path::Path, fsync: FsyncPolicy) -> EngineConfig {
    EngineConfig {
        queue_depth: 4,
        group_max_ops: 32,
        reorg_pump_slices: 4,
        durability: Some(DurabilityConfig {
            fsync,
            ..DurabilityConfig::new(dir)
        }),
        ..EngineConfig::default()
    }
}

fn ivs(n: usize) -> Vec<Interval> {
    (0..n)
        .map(|i| {
            let lo = (i as i64 * 41) % 350;
            Interval::new(lo, lo + (i as i64 * 17) % 70, i as u64)
        })
        .collect()
}

fn content(snap: &ccix_serve::Snapshot) -> Vec<Interval> {
    let mut all = snap.x_range(i64::MIN, i64::MAX);
    all.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
    all
}

#[test]
fn flush_on_an_empty_queue_is_a_durable_noop_barrier() {
    let tmp = TempDir::new("durable-empty-flush");
    let idx = IndexBuilder::new(geometry()).bulk(IoCounter::new(), &ivs(50));
    let engine = Engine::start(idx, config(tmp.path(), FsyncPolicy::default()));
    // Nothing submitted: the barrier must still resolve, at watermark 0,
    // and must be repeatable.
    let a = engine.flush();
    let b = engine.flush();
    assert_eq!(a.ops_applied, 0);
    assert_eq!(b.ops_applied, 0);
    assert!(b.seq >= a.seq);
    engine.shutdown();
}

#[test]
fn shutdown_resolves_in_flight_tickets_durably() {
    let tmp = TempDir::new("durable-inflight");
    let idx = IndexBuilder::new(geometry()).open(IoCounter::new());
    let engine = Engine::start(
        idx,
        config(tmp.path(), FsyncPolicy::Group { max_delay_ms: 50 }),
    );
    // Pile up submissions without waiting on any of them, then shut down
    // immediately: everything queued ahead of the shutdown must still be
    // applied, made durable, and acknowledged.
    let tickets: Vec<_> = (0..10u64)
        .map(|i| {
            engine.submit(vec![IntervalOp::Insert(Interval::new(
                i as i64 * 10,
                i as i64 * 10 + 5,
                i,
            ))])
        })
        .collect();
    let index = engine.shutdown();
    assert_eq!(index.len(), 10);
    for (i, t) in tickets.into_iter().enumerate() {
        let info = t
            .wait_result()
            .unwrap_or_else(|| panic!("in-flight ticket {i} dropped at shutdown"));
        assert!(info.ops_applied as usize > i);
    }
    // And the acknowledgements were real: recovery sees all ten.
    let (engine, report) =
        Engine::recover(meta(), config(tmp.path(), FsyncPolicy::default())).expect("recover");
    assert_eq!(engine.snapshot().ops_applied(), 10);
    assert_eq!(engine.snapshot().len(), 10);
    // Shutdown checkpointed, so nothing needed replay.
    assert_eq!(report.replayed_commits, 0);
    engine.shutdown();
}

#[test]
fn recovery_from_a_never_written_directory_yields_genesis() {
    let tmp = TempDir::new("durable-genesis");
    let initial = ivs(80);
    let idx = IndexBuilder::new(geometry()).bulk(IoCounter::new(), &initial);
    // Start durable, write nothing, shut down: the directory holds only
    // the genesis checkpoint and an empty WAL.
    let engine = Engine::start(idx, config(tmp.path(), FsyncPolicy::EveryCommits(1)));
    engine.shutdown();

    let (engine, report) =
        Engine::recover(meta(), config(tmp.path(), FsyncPolicy::default())).expect("recover");
    let snap = engine.snapshot();
    assert_eq!(snap.ops_applied(), 0);
    assert_eq!(report.replayed_commits, 0);
    assert_eq!(report.checkpoint_intervals, 80);
    assert_eq!(report.torn_tail_bytes, 0);
    let mut want = initial;
    want.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
    assert_eq!(content(&snap), want);
    engine.shutdown();
}

#[test]
fn recovery_from_checkpoint_only_state_resumes_at_the_watermark() {
    let tmp = TempDir::new("durable-ckpt-only");
    let idx = IndexBuilder::new(geometry()).bulk(IoCounter::new(), &ivs(30));
    let engine = Engine::start(idx, config(tmp.path(), FsyncPolicy::EveryCommits(1)));
    for i in 0..6u64 {
        engine
            .submit(vec![IntervalOp::Insert(Interval::new(
                500 + i as i64,
                520 + i as i64,
                1_000 + i,
            ))])
            .wait();
    }
    let full = content(&engine.snapshot());
    engine.shutdown(); // final checkpoint at watermark 6, WAL reset

    // Model the crash window between checkpoint publication and WAL
    // (re)creation: the checkpoint alone fully describes the state.
    std::fs::remove_file(tmp.path().join("wal")).expect("drop wal");

    let (engine, report) =
        Engine::recover(meta(), config(tmp.path(), FsyncPolicy::default())).expect("recover");
    let snap = engine.snapshot();
    assert_eq!(snap.ops_applied(), 6, "resume at the checkpoint watermark");
    assert_eq!(report.replayed_commits, 0);
    assert_eq!(content(&snap), full);
    // The recovered engine logs against a fresh WAL from the watermark.
    let info = engine
        .submit(vec![IntervalOp::Insert(Interval::new(0, 1, 9_999))])
        .wait();
    assert_eq!(info.ops_applied, 7);
    engine.shutdown();

    let (engine, _) =
        Engine::recover(meta(), config(tmp.path(), FsyncPolicy::default())).expect("recover again");
    assert_eq!(engine.snapshot().ops_applied(), 7);
    assert!(engine.snapshot().query(0).contains(&9_999));
    engine.shutdown();
}

#[test]
fn durable_acks_survive_a_drop_without_shutdown() {
    let tmp = TempDir::new("durable-drop");
    let idx = IndexBuilder::new(geometry()).open(IoCounter::new());
    let engine = Engine::start(idx, config(tmp.path(), FsyncPolicy::EveryCommits(1)));
    let info = engine
        .submit(vec![IntervalOp::Insert(Interval::new(3, 9, 42))])
        .wait();
    assert_eq!(info.ops_applied, 1);
    // Drop the engine without an orderly shutdown (the handle-loss path):
    // the acknowledged commit must still be on disk.
    drop(engine);
    let (engine, _) =
        Engine::recover(meta(), config(tmp.path(), FsyncPolicy::default())).expect("recover");
    assert_eq!(engine.snapshot().ops_applied(), 1);
    assert!(engine.snapshot().query(5).contains(&42));
    engine.shutdown();
}
