//! Wire-protocol roundtrips against a real server on a loopback socket.

use ccix_extmem::{Geometry, IoCounter};
use ccix_interval::{IndexBuilder, Interval, IntervalOp};
use ccix_serve::{Client, Engine, EngineConfig, Server};

fn start_server(intervals: &[Interval]) -> ccix_serve::ServerHandle {
    let idx = IndexBuilder::new(Geometry::new(8)).bulk(IoCounter::new(), intervals);
    let engine = Engine::start(idx, EngineConfig::default());
    Server::start(engine, "127.0.0.1:0", 2).expect("bind loopback")
}

#[test]
fn queries_roundtrip() {
    let ivs: Vec<Interval> = (0..100)
        .map(|i| Interval::new(i * 7 % 300, i * 7 % 300 + 40, i as u64))
        .collect();
    let server = start_server(&ivs);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    client.ping().expect("ping");

    let expect = |q: i64| {
        let mut ids: Vec<u64> = ivs
            .iter()
            .filter(|iv| iv.lo <= q && q <= iv.hi)
            .map(|iv| iv.id)
            .collect();
        ids.sort_unstable();
        ids
    };
    for q in [-5, 0, 17, 150, 299, 400] {
        let mut got = client.stab(q).expect("stab");
        got.sort_unstable();
        assert_eq!(got, expect(q), "stab {q}");
    }

    let qs = [3i64, 90, 250];
    let batched = client.stab_batch(&qs).expect("stab_batch");
    assert_eq!(batched.len(), qs.len());
    for (q, mut got) in qs.iter().zip(batched) {
        got.sort_unstable();
        assert_eq!(got, expect(*q), "batched stab {q}");
    }

    let mut got = client.x_range(10, 60).expect("x_range");
    got.sort_unstable_by_key(|iv| (iv.lo, iv.id));
    let mut want: Vec<Interval> = ivs
        .iter()
        .filter(|iv| (10..=60).contains(&iv.lo))
        .copied()
        .collect();
    want.sort_unstable_by_key(|iv| (iv.lo, iv.id));
    assert_eq!(got, want);

    let (seq, ops, len) = client.epoch().expect("epoch");
    assert_eq!((seq, ops, len), (0, 0, 100));

    server.shutdown();
}

#[test]
fn apply_is_visible_across_connections() {
    let server = start_server(&[]);
    let mut writer = Client::connect(server.local_addr()).expect("connect writer");
    let mut reader = Client::connect(server.local_addr()).expect("connect reader");

    let info = writer
        .apply(&[
            IntervalOp::Insert(Interval::new(5, 15, 1)),
            IntervalOp::Insert(Interval::new(10, 20, 2)),
        ])
        .expect("apply");
    assert_eq!(info.ops_applied, 2);

    // The apply reply is the visibility point: a different connection must
    // immediately observe the write.
    let mut got = reader.stab(12).expect("stab");
    got.sort_unstable();
    assert_eq!(got, vec![1, 2]);

    let info = writer
        .apply(&[IntervalOp::Delete(Interval::new(5, 15, 1))])
        .expect("delete");
    assert_eq!(info.ops_applied, 3);
    assert_eq!(reader.stab(12).expect("stab"), vec![2]);

    let (_, ops, len) = reader.epoch().expect("epoch");
    assert_eq!((ops, len), (3, 1));

    server.shutdown();
}
