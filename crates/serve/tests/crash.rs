//! The kill-point differential suite: crash the durable engine at hundreds
//! of deterministic points mid-flood, recover, and demand exact agreement
//! with an oracle replay of the acknowledged prefix.
//!
//! Each trial floods a [`commit_plan`] through an engine whose durable
//! directory sits behind a [`FailFs`] with a `crash_after_ops` budget: when
//! the budget runs out, the filesystem performs its lossy power-loss flush
//! (an arbitrary suffix of unsynced writes lost, the newest survivor
//! possibly torn) and then fails everything forever. The engine's writer
//! dies without acknowledging anything it could not make durable. Recovery
//! then reopens the directory on the *real* filesystem and must find:
//!
//! * a whole-batch prefix of the submission stream (`ops_applied` a
//!   multiple of the batch size — submissions are logged atomically),
//! * at least every acknowledged commit (acknowledged ⇒ replayed), and
//! * content exactly equal to the oracle state for that prefix.
//!
//! Crash points are spread across the whole run — directory creation, the
//! flood, checkpoints, shutdown — by first probing an uncrashed run for
//! its total mutating-op count. Fsync policies and checkpoint cadences
//! rotate per point so group commit, per-commit sync, and
//! checkpoint-truncation windows all get hit.

use std::sync::Arc;

use ccix_core::Tuning;
use ccix_durable::{DurabilityConfig, FailFs, FaultPlan, RealFs, TempDir};
use ccix_extmem::{BackendSpec, Geometry, IoCounter};
use ccix_interval::{IndexBuilder, Interval, IntervalOp, IntervalOptions};
use ccix_serve::{Engine, EngineConfig, FsyncPolicy, Meta};
use ccix_testkit::rng::DetRng;
use ccix_testkit::workloads::{commit_plan, CommitPlan, CommitPlanSpec};

const BATCH_OPS: usize = 16;
const BATCHES: usize = 24;

const PLAN: CommitPlanSpec = CommitPlanSpec {
    initial: 120,
    batches: BATCHES,
    batch_ops: BATCH_OPS,
    delete_prob: 0.35,
    lo_range: 1_500,
    max_len: 90,
};

/// One trial per incremental-reorg regime; the release-mode point count is
/// what the CI crash-recovery leg runs (3 × 80 = 240 kill points). Debug
/// builds keep the same coverage shape at tier-1-friendly cost.
const TRIALS: usize = 3;
#[cfg(debug_assertions)]
const POINTS_PER_TRIAL: usize = 10;
#[cfg(not(debug_assertions))]
const POINTS_PER_TRIAL: usize = 80;

/// Fsync policies rotated across kill points.
const POLICIES: [FsyncPolicy; 4] = [
    FsyncPolicy::EveryCommits(1),
    FsyncPolicy::EveryCommits(4),
    FsyncPolicy::Group { max_delay_ms: 0 },
    FsyncPolicy::Group { max_delay_ms: 5 },
];

/// Checkpoint cadences rotated across kill points (0 = only at barriers),
/// small enough that mid-flood checkpoints — and crashes inside them —
/// actually happen.
const CKPT_EVERY: [u64; 3] = [0, 96, 256];

fn geometry() -> Geometry {
    Geometry::new(8)
}

fn options(trial: usize, rng: &mut DetRng) -> IntervalOptions {
    IntervalOptions {
        tuning: Tuning {
            reorg_pages_per_op: [0, 1, 4][trial % 3],
            update_batch_pages: [1, 2, 4][rng.gen_range(0usize..3)],
            shrink_deletes_pct: [10, 35][rng.gen_range(0usize..2)],
            ..Tuning::default()
        },
        ..IntervalOptions::default()
    }
}

fn engine_config(durability: Option<DurabilityConfig>) -> EngineConfig {
    EngineConfig {
        queue_depth: 4,
        group_max_ops: 3 * BATCH_OPS,
        reorg_pump_slices: 8,
        durability,
        ..EngineConfig::default()
    }
}

fn sorted(mut ivs: Vec<Interval>) -> Vec<Interval> {
    ivs.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
    ivs
}

/// Flood the plan through `engine` without waiting per batch (so real
/// group commits form), then resolve every ticket in order. Returns the
/// highest acknowledged `ops_applied`. Acks must form a prefix: once one
/// ticket comes back dead, no later one may resolve.
fn flood(engine: &Engine, plan: &CommitPlan) -> u64 {
    let mut tickets = Vec::with_capacity(plan.batches.len());
    for batch in &plan.batches {
        match engine.submit_checked(batch.clone()) {
            Ok(t) => tickets.push(t),
            Err(_) => break, // writer already dead: nothing further acks
        }
    }
    let mut max_acked = 0u64;
    let mut dead = false;
    for ticket in tickets {
        match ticket.wait_result() {
            Some(info) => {
                assert!(!dead, "acknowledgement after a dropped commit");
                assert!(info.ops_applied > max_acked, "acks must be in order");
                max_acked = info.ops_applied;
            }
            None => dead = true,
        }
    }
    max_acked
}

/// Run the whole plan against a durable directory on `fs`. Returns the
/// highest acknowledged op watermark and whether the engine even started
/// (a crash inside directory creation means nothing — not even the
/// initial content — was promised to anyone).
fn run_flood(
    plan: &CommitPlan,
    opts: IntervalOptions,
    dir: &std::path::Path,
    fs: Arc<dyn ccix_durable::Fs>,
    fsync: FsyncPolicy,
    checkpoint_every_ops: u64,
) -> (u64, bool) {
    let dcfg = DurabilityConfig {
        dir: dir.to_path_buf(),
        fsync,
        checkpoint_every_ops,
        fs,
    };
    let index = IndexBuilder::new(geometry())
        .options(opts)
        .bulk(IoCounter::new(), &plan.initial);
    match Engine::try_start(index, engine_config(Some(dcfg))) {
        Ok(engine) => {
            let max_acked = flood(&engine, plan);
            let _ = engine.flush_checked(); // barrier (no-op on a dead writer)
            engine.shutdown();
            (max_acked, true)
        }
        Err(_) => (0, false),
    }
}

/// Recover the directory on the real filesystem and check the invariant.
/// With `file_backed`, the rebuild runs on the file backend (pages written
/// under a fresh tempdir) — recovery is logical, so both backends must
/// reach the identical state; this is the file-backed leg of the suite.
fn check_recovery(
    plan: &CommitPlan,
    opts: IntervalOptions,
    dir: &std::path::Path,
    max_acked: u64,
    created: bool,
    file_backed: bool,
    context: &str,
) {
    let dcfg = DurabilityConfig {
        fsync: FsyncPolicy::EveryCommits(1),
        checkpoint_every_ops: 0,
        ..DurabilityConfig::new(dir)
    };
    let fallback = Meta::new(geometry(), opts);
    let pages_dir = file_backed.then(|| TempDir::new("crash-pages"));
    let mut config = engine_config(Some(dcfg));
    if let Some(pages) = &pages_dir {
        config.backend = BackendSpec::file(pages.path());
    }
    let (engine, report) = Engine::recover(fallback, config)
        .unwrap_or_else(|e| panic!("recovery must never fail ({context}): {e}"));
    if let Some(pages) = &pages_dir {
        let n_files = std::fs::read_dir(pages.path())
            .map(|d| {
                d.filter_map(|e| e.ok())
                    .filter(|e| e.path().extension().is_some_and(|x| x == "pages"))
                    .count()
            })
            .unwrap_or(0);
        assert!(
            n_files > 0,
            "file-backed recovery wrote no page files ({context})"
        );
    }
    let snap = engine.snapshot();
    let ops = snap.ops_applied();
    assert_eq!(
        ops % BATCH_OPS as u64,
        0,
        "recovered state must be a whole-batch prefix ({context}, {report:?})"
    );
    let k = (ops / BATCH_OPS as u64) as usize;
    assert!(
        k <= BATCHES,
        "recovered beyond the submitted stream ({context})"
    );
    assert!(
        ops >= max_acked,
        "acknowledged commit lost: recovered {ops} < acked {max_acked} ({context}, {report:?})"
    );
    let got = sorted(snap.x_range(i64::MIN, i64::MAX));
    let want = sorted(plan.states[k].clone());
    if !created && ops == 0 && got.is_empty() {
        // The crash hit inside directory creation, before the genesis
        // checkpoint published: the directory never promised anything, so
        // empty-at-fallback is the one other legal answer.
    } else {
        assert_eq!(
            got, want,
            "recovered content diverges from oracle prefix {k} ({context})"
        );
    }
    // The recovered engine must serve writes durably again.
    let probe = Interval::new(9_999, 10_000, u64::MAX);
    let info = engine
        .submit_checked(vec![IntervalOp::Insert(probe)])
        .ok()
        .and_then(|t| t.wait_result())
        .unwrap_or_else(|| panic!("recovered engine cannot commit ({context})"));
    assert_eq!(info.ops_applied, ops + 1);
    assert!(engine.snapshot().query(9_999).contains(&u64::MAX));
    engine.shutdown();
}

#[test]
fn recovery_agrees_with_oracle_at_every_kill_point() {
    for trial in 0..TRIALS {
        let mut rng = DetRng::new(trial_seed(trial));
        let opts = options(trial, &mut rng);
        let plan = commit_plan(&mut rng, PLAN);

        // Probe: one uncrashed run through FailFs (same noise, no budget)
        // sizes the op space the kill points are spread over, and checks
        // the noisy-but-crashless path end to end.
        let probe_dir = TempDir::new("crash-probe");
        let probe_fs = FailFs::new(
            RealFs::shared(),
            rng.next_u64(),
            FaultPlan {
                crash_after_ops: None,
                short_write: 0.05,
                eintr: 0.02,
            },
        );
        let (acked, created) = run_flood(
            &plan,
            opts,
            probe_dir.path(),
            Arc::new(probe_fs.clone()),
            POLICIES[trial % POLICIES.len()],
            CKPT_EVERY[trial % CKPT_EVERY.len()],
        );
        assert!(created, "probe run must initialise");
        assert_eq!(
            acked,
            (BATCHES * BATCH_OPS) as u64,
            "probe run must ack everything"
        );
        // The probe recovers file-backed: every trial exercises the
        // file-backend rebuild on the fully acknowledged state.
        check_recovery(&plan, opts, probe_dir.path(), acked, created, true, "probe");
        let total_ops = probe_fs.ops().max(POINTS_PER_TRIAL as u64);

        // Kill points: evenly strided across the probe's op count, with
        // per-point jitter so reruns of the suite don't always land on
        // stride boundaries. Scheduling may shift where a given budget
        // falls in the logical stream — every landing spot is a valid
        // crash to survive.
        for point in 0..POINTS_PER_TRIAL {
            let stride = total_ops / POINTS_PER_TRIAL as u64;
            let crash_at = 1 + point as u64 * stride + rng.gen_range(0..stride.max(1));
            let fsync = POLICIES[point % POLICIES.len()];
            let ckpt = CKPT_EVERY[point % CKPT_EVERY.len()];
            let dir = TempDir::new("crash-point");
            let fail_fs = FailFs::new(
                RealFs::shared(),
                rng.next_u64(),
                FaultPlan {
                    crash_after_ops: Some(crash_at),
                    short_write: 0.05,
                    eintr: 0.02,
                },
            );
            let (max_acked, created) = run_flood(
                &plan,
                opts,
                dir.path(),
                Arc::new(fail_fs.clone()),
                fsync,
                ckpt,
            );
            // Every third point recovers onto the file backend; the rest
            // stay on the model, so both rebuild paths see crashes of
            // every flavour.
            let file_backed = point % 3 == 2;
            let context = format!(
                "trial {trial}, point {point}, crash_at {crash_at}, \
                 fsync {fsync:?}, ckpt {ckpt}, file_backed {file_backed}, crashed {}",
                fail_fs.crashed()
            );
            check_recovery(
                &plan,
                opts,
                dir.path(),
                max_acked,
                created,
                file_backed,
                &context,
            );
        }
    }
}

/// Per-trial base seeds (distinct from the stress suite's).
fn trial_seed(trial: usize) -> u64 {
    0xdead_0001_u64.wrapping_mul(trial as u64 + 1) ^ 0x5afe_c0de
}
