//! Concurrency stress: reader threads race a writer flood, and every
//! snapshot must agree exactly with a sequential oracle replay.
//!
//! The key trick is that the engine applies submissions whole and in
//! order, so [`ccix_serve::Snapshot::ops_applied`] is always a multiple of
//! the (fixed) batch size: dividing identifies exactly which prefix of the
//! batch stream a snapshot contains, and the oracle state for that prefix
//! is precomputed before the engine starts. Any torn or stale read —
//! a page shared with the writer mid-update, a reorg delta missing from a
//! fork, a commit published before its flood finished — shows up as a
//! mismatch against the oracle.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};

use ccix_extmem::{Geometry, IoCounter};
use ccix_interval::{IndexBuilder, Interval, IntervalOp};
use ccix_serve::{Engine, EngineConfig};
use ccix_testkit::check;
use ccix_testkit::rng::DetRng;
use ccix_testkit::workloads::{commit_plan, CommitPlan, CommitPlanSpec};

const BATCH_OPS: usize = 20;
const BATCHES: usize = 30;
const INITIAL: usize = 400;
const READERS: usize = 3;

const PLAN: CommitPlanSpec = CommitPlanSpec {
    initial: INITIAL,
    batches: BATCHES,
    batch_ops: BATCH_OPS,
    delete_prob: 0.35,
    lo_range: 2_000,
    max_len: 120,
};

fn rand_interval(rng: &mut DetRng, id: u64) -> Interval {
    let lo = rng.gen_range(0i64..2_000);
    Interval::new(lo, lo + rng.gen_range(0i64..120), id)
}

/// Ids of intervals in `state` containing `q`, sorted.
fn stab_oracle(state: &[Interval], q: i64) -> Vec<u64> {
    let mut ids: Vec<u64> = state
        .iter()
        .filter(|iv| iv.lo <= q && q <= iv.hi)
        .map(|iv| iv.id)
        .collect();
    ids.sort_unstable();
    ids
}

/// Intervals in `state` with left endpoint in `[x1, x2]`, in a canonical
/// order for comparison.
fn x_range_oracle(state: &[Interval], x1: i64, x2: i64) -> Vec<Interval> {
    let mut ivs: Vec<Interval> = state
        .iter()
        .filter(|iv| x1 <= iv.lo && iv.lo <= x2)
        .copied()
        .collect();
    ivs.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
    ivs
}

/// Random write-path tunings, always including incremental-reorg modes.
fn rand_tuning(rng: &mut DetRng, trial: usize) -> ccix_core::Tuning {
    // Force the interesting regimes deterministically across trials: no
    // deferred debt, trickle, and coarse slices.
    ccix_core::Tuning {
        reorg_pages_per_op: [0, 1, 4][trial % 3],
        update_batch_pages: [1, 2, 4][rng.gen_range(0usize..3)],
        shrink_deletes_pct: [10, 35][rng.gen_range(0usize..2)],
        ..ccix_core::Tuning::default()
    }
}

#[test]
fn snapshots_agree_with_oracle_under_flood() {
    let trial = AtomicU64::new(0);
    check::trials("serve_stress", 3, 0x5eed_c0de, |rng| {
        let trial = trial.fetch_add(1, Relaxed) as usize;
        let tuning = rand_tuning(rng, trial);
        let plan: CommitPlan = commit_plan(rng, PLAN);
        let idx = IndexBuilder::new(Geometry::new(8))
            .tuning(tuning)
            .bulk(IoCounter::new(), &plan.initial);
        let engine = Engine::start(
            idx,
            EngineConfig {
                queue_depth: 4,
                group_max_ops: 3 * BATCH_OPS, // exercise real grouping
                reorg_pump_slices: 8,
                ..EngineConfig::default()
            },
        );

        // Per-reader probe scripts, drawn before the threads start so the
        // whole trial stays deterministic.
        let probes: Vec<Vec<(i64, i64)>> = (0..READERS)
            .map(|_| {
                (0..64)
                    .map(|_| {
                        let q = rng.gen_range(-10i64..2_200);
                        (q, q + rng.gen_range(0i64..200))
                    })
                    .collect()
            })
            .collect();

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for script in &probes {
                let engine = &engine;
                let done = &done;
                let states = &plan.states;
                scope.spawn(move || {
                    let mut i = 0usize;
                    let mut checks = 0u32;
                    loop {
                        let finished = done.load(Relaxed);
                        let snap = engine.snapshot();
                        let ops = snap.ops_applied();
                        assert_eq!(
                            ops % BATCH_OPS as u64,
                            0,
                            "submissions must be visible whole"
                        );
                        let state = &states[(ops / BATCH_OPS as u64) as usize];
                        let (q, hi) = script[i % script.len()];
                        i += 1;
                        let mut got = snap.query(q);
                        got.sort_unstable();
                        assert_eq!(got, stab_oracle(state, q), "stab at {q}, epoch {ops}");
                        let mut got = snap.x_range(q, hi);
                        got.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
                        assert_eq!(
                            got,
                            x_range_oracle(state, q, hi),
                            "x_range [{q},{hi}], epoch {ops}"
                        );
                        checks += 1;
                        // One full pass after the writer finishes, so the
                        // final state is always exercised too.
                        if finished && checks >= script.len() as u32 {
                            break;
                        }
                    }
                });
            }

            // Writer: flood the batches through the bounded queue; hold
            // the last ticket to observe visibility ordering.
            let mut last = None;
            for batch in &plan.batches {
                last = Some(engine.submit(batch.clone()));
            }
            let info = last.expect("batches nonempty").wait();
            assert_eq!(info.ops_applied, (BATCHES * BATCH_OPS) as u64);
            let snap = engine.snapshot();
            assert!(
                snap.ops_applied() >= info.ops_applied,
                "commit visible before ticket resolves"
            );
            done.store(true, Relaxed);
        });

        let final_index = engine.shutdown();
        let last_state = plan.states.last().expect("states nonempty");
        assert_eq!(final_index.len(), last_state.len());
    });
}

/// The sharded engine under the same oracle discipline: snapshot readers
/// race shard-parallel group commits, and every published epoch must be a
/// consistent all-shards cut at a whole-submission boundary. Afterwards
/// the writer's idle pump must bleed the remaining reorganisation debt to
/// zero while the queue stays empty (observable via
/// [`Engine::reorg_debt`]).
#[test]
fn sharded_snapshots_agree_with_oracle_under_flood() {
    let trial = AtomicU64::new(0);
    check::trials("serve_stress_sharded", 3, 0x5aa2_d0de, |rng| {
        let trial = trial.fetch_add(1, Relaxed) as usize;
        let tuning = ccix_core::Tuning {
            // 0 = available parallelism; the writer fans every group out
            // over the shard pool either way.
            shard_threads: [0, 2, 4][trial % 3],
            ..rand_tuning(rng, trial)
        };
        let plan: CommitPlan = commit_plan(rng, PLAN);
        let shards = rng.gen_range(2usize..5);
        let sample: Vec<i64> = plan.initial.iter().map(|iv| iv.lo).collect();
        let idx = IndexBuilder::new(Geometry::new(8))
            .tuning(tuning)
            .sharded()
            .splits_from_sample(&sample, shards)
            .bulk(&plan.initial);
        let engine = Engine::start_sharded(
            idx,
            EngineConfig {
                queue_depth: 4,
                group_max_ops: 3 * BATCH_OPS,
                reorg_pump_slices: 8,
                ..EngineConfig::default()
            },
        );
        assert_eq!(engine.snapshot().num_shards(), shards);

        let probes: Vec<Vec<(i64, i64)>> = (0..READERS)
            .map(|_| {
                (0..64)
                    .map(|_| {
                        let q = rng.gen_range(-10i64..2_200);
                        (q, q + rng.gen_range(0i64..200))
                    })
                    .collect()
            })
            .collect();

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for script in &probes {
                let engine = &engine;
                let done = &done;
                let states = &plan.states;
                scope.spawn(move || {
                    let mut i = 0usize;
                    let mut checks = 0u32;
                    loop {
                        let finished = done.load(Relaxed);
                        let snap = engine.snapshot();
                        let ops = snap.ops_applied();
                        assert_eq!(
                            ops % BATCH_OPS as u64,
                            0,
                            "submissions must be visible whole across shards"
                        );
                        let state = &states[(ops / BATCH_OPS as u64) as usize];
                        let (q, hi) = script[i % script.len()];
                        i += 1;
                        let mut got = snap.query(q);
                        got.sort_unstable();
                        assert_eq!(got, stab_oracle(state, q), "stab at {q}, epoch {ops}");
                        let mut got = snap.x_range(q, hi);
                        got.sort_unstable_by_key(|iv| (iv.lo, iv.hi, iv.id));
                        assert_eq!(
                            got,
                            x_range_oracle(state, q, hi),
                            "x_range [{q},{hi}], epoch {ops}"
                        );
                        checks += 1;
                        if finished && checks >= script.len() as u32 {
                            break;
                        }
                    }
                });
            }

            let mut last = None;
            for batch in &plan.batches {
                last = Some(engine.submit(batch.clone()));
            }
            let info = last.expect("batches nonempty").wait();
            assert_eq!(info.ops_applied, (BATCHES * BATCH_OPS) as u64);
            done.store(true, Relaxed);
        });

        // Idle pump: with the queue empty the writer keeps bleeding debt
        // in bounded rounds, so the mirror must reach zero on its own.
        let mut waited = 0u32;
        while engine.reorg_debt() > 0 {
            std::thread::sleep(std::time::Duration::from_millis(10));
            waited += 1;
            assert!(waited < 500, "idle pump failed to drain reorg debt");
        }

        let final_index = engine.shutdown_sharded();
        assert_eq!(final_index.num_shards(), shards);
        let last_state = plan.states.last().expect("states nonempty");
        assert_eq!(final_index.len(), last_state.len());
        assert_eq!(final_index.reorg_debt(), 0, "debt drained at shutdown");
    });
}

#[test]
fn every_ticket_resolves_at_a_visible_epoch() {
    check::trials("serve_visibility", 3, 0xcafe_f00d, |rng| {
        let idx = IndexBuilder::new(Geometry::new(8)).open(IoCounter::new());
        let engine = Engine::start(
            idx,
            EngineConfig {
                queue_depth: 2,
                group_max_ops: 8,
                reorg_pump_slices: 4,
                ..EngineConfig::default()
            },
        );
        let mut live: Vec<Interval> = Vec::new();
        for id in 0..50u64 {
            let iv = rand_interval(rng, id);
            let info = engine.submit(vec![IntervalOp::Insert(iv)]).wait();
            live.push(iv);
            assert_eq!(info.ops_applied, id + 1);
            // The visibility rule: once the ticket resolves, every new
            // snapshot contains the write.
            let snap = engine.snapshot();
            assert!(snap.ops_applied() >= info.ops_applied);
            let mut got = snap.query(iv.lo);
            got.sort_unstable();
            assert_eq!(got, stab_oracle(&live, iv.lo), "insert {id} visible");
        }
        engine.shutdown();
    });
}
