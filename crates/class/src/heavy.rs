//! `label-edges` (Fig. 22) and the heavy-path decomposition of Lemma 4.5.
//!
//! Following the dynamic-trees technique of Sleator and Tarjan \[34\], the
//! edge from a class to its largest-subtree child is **thick**; all other
//! edges are **thin**. Lemma 4.5: any leaf-to-root path crosses at most
//! `log2 c` thin edges. Maximal thick chains — *heavy paths* — partition
//! the classes; each heavy path is a degenerate hierarchy, exactly the case
//! Lemma 4.3 solves with one 3-sided structure.

use crate::{ClassId, Hierarchy};

/// The heavy-path decomposition of a hierarchy.
#[derive(Clone, Debug)]
pub struct HeavyPaths {
    /// `path_of[c]` = index of the heavy path containing class `c`.
    pub path_of: Vec<usize>,
    /// `pos_of[c]` = position of `c` within its path (0 at the top).
    pub pos_of: Vec<usize>,
    /// The paths themselves, top-down.
    pub paths: Vec<Vec<ClassId>>,
}

/// Compute thick/thin labels (`label-edges`): returns, for each class, its
/// thick child (the child whose subtree is largest), if any.
pub fn thick_children(h: &Hierarchy) -> Vec<Option<ClassId>> {
    (0..h.len())
        .map(|c| {
            h.children(c)
                .iter()
                .copied()
                .max_by_key(|&ch| (h.subtree_size(ch), std::cmp::Reverse(ch)))
        })
        .collect()
}

/// Decompose the hierarchy into heavy paths.
pub fn decompose(h: &Hierarchy) -> HeavyPaths {
    let thick = thick_children(h);
    let mut path_of = vec![usize::MAX; h.len()];
    let mut pos_of = vec![usize::MAX; h.len()];
    let mut paths = Vec::new();

    // A heavy path starts at every class whose parent edge is thin (or that
    // is a root) and follows thick edges to a leaf.
    for c in 0..h.len() {
        let starts_path = match h.parent(c) {
            None => true,
            Some(p) => thick[p] != Some(c),
        };
        if !starts_path {
            continue;
        }
        let mut path = Vec::new();
        let mut cur = Some(c);
        while let Some(v) = cur {
            path_of[v] = paths.len();
            pos_of[v] = path.len();
            path.push(v);
            cur = thick[v];
        }
        paths.push(path);
    }
    debug_assert!(path_of.iter().all(|&p| p != usize::MAX));
    HeavyPaths {
        path_of,
        pos_of,
        paths,
    }
}

impl HeavyPaths {
    /// Number of thin edges on the path from `c` to its root — the
    /// replication factor of `c`'s objects (Lemma 4.6 part 1).
    pub fn thin_edges_to_root(&self, h: &Hierarchy, c: ClassId) -> usize {
        let mut count = 0;
        let mut cur = c;
        loop {
            // Jump to the top of the current heavy path, then cross its
            // (thin) parent edge.
            let top = self.paths[self.path_of[cur]][0];
            match h.parent(top) {
                Some(p) => {
                    count += 1;
                    cur = p;
                }
                None => return count,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccix_extmem::Geometry;

    #[test]
    fn paths_partition_classes() {
        let h = Hierarchy::from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)]);
        let hp = decompose(&h);
        let total: usize = hp.paths.iter().map(Vec::len).sum();
        assert_eq!(total, h.len());
        for (i, path) in hp.paths.iter().enumerate() {
            for (j, &c) in path.iter().enumerate() {
                assert_eq!(hp.path_of[c], i);
                assert_eq!(hp.pos_of[c], j);
            }
            // Consecutive path members are parent/child.
            for w in path.windows(2) {
                assert_eq!(h.parent(w[1]), Some(w[0]));
            }
        }
    }

    #[test]
    fn degenerate_hierarchy_is_one_path() {
        let parents: Vec<Option<usize>> = (0..20)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let h = Hierarchy::from_parents(&parents);
        let hp = decompose(&h);
        assert_eq!(hp.paths.len(), 1);
        assert_eq!(hp.paths[0].len(), 20);
        assert_eq!(hp.thin_edges_to_root(&h, 19), 0);
    }

    /// Lemma 4.5: at most log2 c thin edges from any class to the root.
    #[test]
    fn thin_edge_bound() {
        // A complete binary hierarchy maximises thin crossings.
        let parents: Vec<Option<usize>> = std::iter::once(None)
            .chain((1..255).map(|i| Some((i - 1) / 2)))
            .collect();
        let h = Hierarchy::from_parents(&parents);
        let hp = decompose(&h);
        let bound = Geometry::log2(h.len());
        for c in 0..h.len() {
            let thin = hp.thin_edges_to_root(&h, c);
            assert!(
                thin <= bound,
                "class {c}: {thin} thin edges > log2 c = {bound}"
            );
        }
    }

    /// A caterpillar (path with pendant leaves) still respects the bound.
    #[test]
    fn caterpillar_thin_edges() {
        // Spine 0-2-4-..., each spine node has a pendant leaf.
        let mut parents: Vec<Option<usize>> = Vec::new();
        for i in 0..40 {
            if i == 0 {
                parents.push(None);
            } else if i % 2 == 0 {
                parents.push(Some(i - 2)); // spine
            } else {
                parents.push(Some(i - 1)); // pendant leaf
            }
        }
        let h = Hierarchy::from_parents(&parents);
        let hp = decompose(&h);
        // The spine is one heavy path; each pendant leaf is its own path.
        assert_eq!(hp.paths.len(), 1 + 19);
        let bound = Geometry::log2(h.len());
        for c in 0..h.len() {
            assert!(hp.thin_edges_to_root(&h, c) <= bound);
        }
    }
}
