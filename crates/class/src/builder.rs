//! One construction surface for every class-indexing strategy.
//!
//! The four strategies each expose a direct constructor, but callers that
//! pick a strategy at runtime (benches, the differential suites, the
//! examples) previously matched on an ad-hoc enum at every call site.
//! [`IndexBuilder`] centralises that dispatch behind the same
//! configure-then-`open`/`bulk` shape as `ccix_interval::IndexBuilder`.

use ccix_core::Tuning;
use ccix_extmem::{Geometry, IoCounter};

use crate::{
    ClassIndex, ClassOp, FullExtentBaseline, Hierarchy, Object, RakeClassIndex,
    RangeTreeClassIndex, SingleIndexBaseline,
};

/// Which class-indexing strategy to construct (see the crate-level table
/// for the cost trade-offs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// [`SingleIndexBaseline`]: one attribute index, post-filtered.
    Single,
    /// [`FullExtentBaseline`] (Lemma 4.2): one index per class.
    FullExtent,
    /// [`RangeTreeClassIndex`] (Theorem 2.6).
    RangeTree,
    /// [`RakeClassIndex`] (Theorem 4.7) — the paper's composite index.
    #[default]
    Rake,
}

/// Configures and constructs [`ClassIndex`] implementations.
///
/// ```
/// use ccix_class::{Hierarchy, IndexBuilder, Object, Strategy};
/// use ccix_extmem::{Geometry, IoCounter};
///
/// let (people, [_, employee, _, _]) = Hierarchy::example_people();
/// let idx = IndexBuilder::new(people, Geometry::new(16))
///     .strategy(Strategy::Rake)
///     .bulk(IoCounter::new(), &[Object::new(employee, 30_000, 1)]);
/// assert_eq!(idx.query(employee, 0, 50_000), vec![1]);
/// ```
#[derive(Clone, Debug)]
pub struct IndexBuilder {
    hierarchy: Hierarchy,
    geo: Geometry,
    strategy: Strategy,
    tuning: Tuning,
}

impl IndexBuilder {
    /// Start from a frozen `hierarchy` and block geometry, defaulting to
    /// the paper's composite strategy ([`Strategy::Rake`]) with the
    /// measured default [`Tuning`].
    pub fn new(hierarchy: Hierarchy, geo: Geometry) -> Self {
        Self {
            hierarchy,
            geo,
            strategy: Strategy::default(),
            tuning: Tuning::default(),
        }
    }

    /// Pick the strategy to construct.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Write-path tuning for the rake index's per-path 3-sided trees
    /// (ignored by the strategies that only keep B+-trees).
    pub fn tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Open an empty index of the configured strategy, charging I/O to
    /// `counter`.
    pub fn open(&self, counter: IoCounter) -> Box<dyn ClassIndex> {
        match self.strategy {
            Strategy::Single => Box::new(SingleIndexBaseline::new(
                self.hierarchy.clone(),
                self.geo,
                counter,
            )),
            Strategy::FullExtent => Box::new(FullExtentBaseline::new(
                self.hierarchy.clone(),
                self.geo,
                counter,
            )),
            Strategy::RangeTree => Box::new(RangeTreeClassIndex::new(
                self.hierarchy.clone(),
                self.geo,
                counter,
            )),
            Strategy::Rake => Box::new(RakeClassIndex::new_tuned(
                self.hierarchy.clone(),
                self.geo,
                counter,
                self.tuning,
            )),
        }
    }

    /// Open an index and load `objects` as one batched flood
    /// ([`ClassIndex::apply_batch`]), charging the load's I/O to `counter`.
    pub fn bulk(&self, counter: IoCounter, objects: &[Object]) -> Box<dyn ClassIndex> {
        let mut idx = self.open(counter);
        let ops: Vec<ClassOp> = objects.iter().map(|&o| ClassOp::Insert(o)).collect();
        idx.apply_batch(&ops);
        idx
    }
}
