//! The range-tree class index of Theorem 2.6 (`index-classes`, Fig. 6).
//!
//! `label-class` turns class membership into an integer in `[0, c)`; a
//! balanced binary tree over that interval (the classic range-tree primary
//! dimension) assigns each binary node the collection of objects whose
//! labels fall in its segment, and each collection is indexed by a B+-tree
//! on the attribute. A class query covers its label range with `O(log2 c)`
//! canonical nodes; an insert updates the `O(log2 c)` trees on one
//! root-to-leaf path. Space is `O((n/B)·log2 c)` since each object lives at
//! one node per level.

use ccix_bptree::BPlusTree;
use ccix_extmem::{Disk, Geometry, IoCounter};

use crate::{ClassId, ClassIndex, Hierarchy, Object};

/// A node of the balanced segment tree over label space.
#[derive(Debug)]
struct SegNode {
    /// Covered label interval `[lo, hi)`.
    lo: i64,
    hi: i64,
    left: Option<usize>,
    right: Option<usize>,
    tree: BPlusTree,
}

/// Theorem 2.6: query `O(log2 c · log_B n + t/B)`, insert
/// `O(log2 c · log_B n)`, space `O((n/B) log2 c)` — "an ideal choice for
/// implementation" per §2.2.
#[derive(Debug)]
pub struct RangeTreeClassIndex {
    hierarchy: Hierarchy,
    disk: Disk,
    nodes: Vec<SegNode>,
    root: Option<usize>,
}

impl RangeTreeClassIndex {
    /// Create an empty index over `hierarchy`.
    pub fn new(hierarchy: Hierarchy, geo: Geometry, counter: IoCounter) -> Self {
        let disk = Disk::new((24 * geo.b + 7).max(103), counter);
        let mut idx = Self {
            root: None,
            nodes: Vec::new(),
            disk,
            hierarchy,
        };
        let c = idx.hierarchy.len() as i64;
        if c > 0 {
            idx.root = Some(Self::build_segment(&mut idx.nodes, &mut idx.disk, 0, c));
        }
        idx
    }

    fn build_segment(nodes: &mut Vec<SegNode>, disk: &mut Disk, lo: i64, hi: i64) -> usize {
        debug_assert!(lo < hi);
        let tree = BPlusTree::new(disk);
        let (left, right) = if hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            (
                Some(Self::build_segment(nodes, disk, lo, mid)),
                Some(Self::build_segment(nodes, disk, mid, hi)),
            )
        } else {
            (None, None)
        };
        nodes.push(SegNode {
            lo,
            hi,
            left,
            right,
            tree,
        });
        nodes.len() - 1
    }

    /// The canonical cover of `[lo, hi)`: `O(log2 c)` node indices.
    fn canonical(&self, node: usize, lo: i64, hi: i64, out: &mut Vec<usize>) {
        let n = &self.nodes[node];
        if hi <= n.lo || n.hi <= lo {
            return;
        }
        if lo <= n.lo && n.hi <= hi {
            out.push(node);
            return;
        }
        if let Some(l) = n.left {
            self.canonical(l, lo, hi, out);
        }
        if let Some(r) = n.right {
            self.canonical(r, lo, hi, out);
        }
    }

    /// The hierarchy this index is built over.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

impl ClassIndex for RangeTreeClassIndex {
    fn insert(&mut self, o: Object) {
        let label = self.hierarchy.label(o.class);
        // Update every collection on the root-to-leaf path for `label`.
        let mut cur = self.root;
        while let Some(i) = cur {
            // Indexing a collection = inserting into its B+-tree. The node
            // list is borrowed around the disk, so split the borrow.
            let node = &mut self.nodes[i];
            node.tree.insert(&mut self.disk, o.attr, o.id);
            cur = if node.hi - node.lo == 1 {
                None
            } else {
                let mid = node.lo + (node.hi - node.lo) / 2;
                if label < mid {
                    node.left
                } else {
                    node.right
                }
            };
        }
    }

    fn delete(&mut self, o: Object) {
        let label = self.hierarchy.label(o.class);
        // Remove from every collection on the root-to-leaf path for
        // `label` — the exact mirror of `insert`.
        let mut cur = self.root;
        while let Some(i) = cur {
            let node = &mut self.nodes[i];
            let removed = node.tree.delete(&mut self.disk, o.attr, o.id);
            debug_assert!(removed, "deleted object {o:?} missing at segment node");
            cur = if node.hi - node.lo == 1 {
                None
            } else {
                let mid = node.lo + (node.hi - node.lo) / 2;
                if label < mid {
                    node.left
                } else {
                    node.right
                }
            };
        }
    }

    fn query(&self, class: ClassId, a1: i64, a2: i64) -> Vec<u64> {
        let (lo, hi) = self.hierarchy.label_range(class);
        let mut cover = Vec::new();
        if let Some(root) = self.root {
            self.canonical(root, lo, hi, &mut cover);
        }
        let mut out = Vec::new();
        for i in cover {
            out.extend(self.nodes[i].tree.range(&self.disk, a1, a2));
        }
        out
    }

    fn space_pages(&self) -> usize {
        self.disk.pages_in_use()
    }

    fn name(&self) -> &'static str {
        "range-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_cover_is_logarithmic() {
        let parents: Vec<Option<usize>> = std::iter::once(None)
            .chain((1..64).map(|i| Some((i - 1) / 2)))
            .collect();
        let h = Hierarchy::from_parents(&parents);
        let idx = RangeTreeClassIndex::new(h, Geometry::new(8), IoCounter::new());
        for class in 0..64 {
            let (lo, hi) = idx.hierarchy().label_range(class);
            let mut cover = Vec::new();
            idx.canonical(idx.root.unwrap(), lo, hi, &mut cover);
            assert!(
                cover.len() <= 2 * 7,
                "class {class}: cover of {} nodes",
                cover.len()
            );
        }
    }

    #[test]
    fn example_queries() {
        let (h, [person, professor, student, asst_prof]) = Hierarchy::example_people();
        let mut idx = RangeTreeClassIndex::new(h, Geometry::new(8), IoCounter::new());
        idx.insert(Object::new(person, 30, 1));
        idx.insert(Object::new(professor, 90, 2));
        idx.insert(Object::new(student, 10, 3));
        idx.insert(Object::new(asst_prof, 55, 4));
        let mut profs = idx.query(professor, 0, 200);
        profs.sort_unstable();
        assert_eq!(profs, vec![2, 4]);
        assert_eq!(idx.query(asst_prof, 0, 200), vec![4]);
        let mut all = idx.query(person, 0, 60);
        all.sort_unstable();
        assert_eq!(all, vec![1, 3, 4]);
    }
}
