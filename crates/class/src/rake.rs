//! `rake-and-contract` (Fig. 23, Lemma 4.6) — the composite class index of
//! Theorem 4.7.
//!
//! Heavy paths are degenerate hierarchies: along a path `v1 … vk`, the full
//! extent of `vi` is everything indexed at positions `≥ i` (Lemma 4.3). The
//! procedure gives each heavy path one **3-sided metablock tree** whose
//! points are `(attribute, position)`; a singleton leaf path degenerates to
//! a one-dimensional structure and gets a plain **B+-tree** instead (the
//! first `for` loop of Fig. 23 / Lemma 4.2).
//!
//! Contracting a path copies its collection across the thin edge above it,
//! so an object of class `c` is indexed once in `c`'s own path structure
//! and once per thin edge on the way to the root — at most `log2 c + 1`
//! copies (Lemmas 4.5, 4.6). Queries touch exactly one structure:
//!
//! * query I/Os `O(log_B n + t/B + log2 B)`,
//! * insert I/Os `O(log2 c · (log_B n + (log_B n)²/B))` amortised,
//! * space `O((n/B) · log2 c)` (Theorem 4.7).

use ccix_bptree::BPlusTree;
use ccix_core::{Op, ThreeSidedTree, Tuning};
use ccix_extmem::{Disk, Geometry, IoCounter, Point};

use crate::heavy::{decompose, HeavyPaths};
use crate::{ClassId, ClassIndex, ClassOp, Hierarchy, Object};

/// Per-heavy-path structure.
#[derive(Debug)]
enum PathStructure {
    /// Paths of length ≥ 2: 3-sided queries over (attr, position). Boxed:
    /// the tree's control state dwarfs the flat variant's.
    ThreeSided(Box<ThreeSidedTree>),
    /// Singleton leaf paths: a plain attribute B+-tree (Lemma 4.2's move).
    Flat(BPlusTree),
}

/// The Theorem 4.7 class index.
#[derive(Debug)]
pub struct RakeClassIndex {
    hierarchy: Hierarchy,
    paths: HeavyPaths,
    structures: Vec<PathStructure>,
    /// For each class: every (path, position) that holds its extent — its
    /// own path plus one per thin edge up to the root.
    placements: Vec<Vec<(usize, i64)>>,
    disk: Disk,
    counter: IoCounter,
    len: usize,
}

impl RakeClassIndex {
    /// Create an empty index over `hierarchy` with the measured default
    /// [`Tuning`].
    pub fn new(hierarchy: Hierarchy, geo: Geometry, counter: IoCounter) -> Self {
        Self::new_tuned(hierarchy, geo, counter, Tuning::default())
    }

    /// Create an empty index over `hierarchy` with explicit write-path
    /// tuning for the per-path 3-sided trees.
    pub fn new_tuned(
        hierarchy: Hierarchy,
        geo: Geometry,
        counter: IoCounter,
        tuning: Tuning,
    ) -> Self {
        let paths = decompose(&hierarchy);
        let mut disk = Disk::new((24 * geo.b + 7).max(103), counter.clone());
        let structures: Vec<PathStructure> = paths
            .paths
            .iter()
            .map(|p| {
                let is_singleton_leaf = p.len() == 1 && hierarchy.children(p[0]).is_empty();
                if is_singleton_leaf {
                    PathStructure::Flat(BPlusTree::new(&mut disk))
                } else {
                    PathStructure::ThreeSided(Box::new(ThreeSidedTree::new_tuned(
                        geo,
                        counter.clone(),
                        tuning,
                    )))
                }
            })
            .collect();

        // Placements (Lemma 4.6): walk thin edges toward the root.
        let placements = (0..hierarchy.len())
            .map(|c| {
                let mut list = vec![(paths.path_of[c], paths.pos_of[c] as i64)];
                let mut cur = c;
                loop {
                    let top = paths.paths[paths.path_of[cur]][0];
                    match hierarchy.parent(top) {
                        Some(p) => {
                            list.push((paths.path_of[p], paths.pos_of[p] as i64));
                            cur = p;
                        }
                        None => break,
                    }
                }
                list
            })
            .collect();

        Self {
            hierarchy,
            paths,
            structures,
            placements,
            disk,
            counter,
            len: 0,
        }
    }

    /// The hierarchy this index is built over.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Number of objects inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Replication factor of a class: how many structures hold its extent.
    pub fn copies(&self, class: ClassId) -> usize {
        self.placements[class].len()
    }

    /// The heavy-path decomposition used.
    pub fn heavy_paths(&self) -> &HeavyPaths {
        &self.paths
    }

    /// The shared I/O counter (covers every path structure).
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }
}

impl ClassIndex for RakeClassIndex {
    fn insert(&mut self, o: Object) {
        // One copy per placement. Placements walk strictly upward across
        // thin edges, so each placement lands on a distinct path structure;
        // the object id is therefore unique within every structure.
        for &(path, y) in &self.placements[o.class] {
            match &mut self.structures[path] {
                PathStructure::ThreeSided(t) => t.insert(Point::new(o.attr, y, o.id)),
                PathStructure::Flat(t) => t.insert(&mut self.disk, o.attr, o.id),
            }
        }
        self.len += 1;
    }

    fn delete(&mut self, o: Object) {
        // One tombstone per placement — the exact mirror of `insert`: the
        // 3-sided path structures route a tombstone next to the live copy
        // and cancel at the next reorganisation; the flat B+-trees remove
        // eagerly.
        for &(path, y) in &self.placements[o.class] {
            match &mut self.structures[path] {
                PathStructure::ThreeSided(t) => t.delete(Point::new(o.attr, y, o.id)),
                PathStructure::Flat(t) => {
                    let removed = t.delete(&mut self.disk, o.attr, o.id);
                    debug_assert!(removed, "deleted object {o:?} missing from flat path");
                }
            }
        }
        self.len -= 1;
    }

    /// Batched delete flood: objects are grouped by the heavy-path
    /// structure each placement lands on, and every 3-sided tree routes
    /// its group's tombstones as one batched operation
    /// ([`ThreeSidedTree::delete_batch`]) — the shared descent prefix is
    /// billed once per residency, mirroring `query_batch`.
    fn delete_batch(&mut self, objects: &[Object]) {
        let mut groups: Vec<Vec<Point>> = vec![Vec::new(); self.structures.len()];
        for o in objects {
            for &(path, y) in &self.placements[o.class] {
                groups[path].push(Point::new(o.attr, y, o.id));
            }
        }
        for (path, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            match &mut self.structures[path] {
                PathStructure::ThreeSided(t) => t.delete_batch(&group),
                PathStructure::Flat(t) => {
                    for p in group {
                        let removed = t.delete(&mut self.disk, p.x, p.id);
                        debug_assert!(removed, "deleted object missing from flat path");
                    }
                }
            }
        }
        self.len -= objects.len();
    }

    /// Batched mixed flood: ops are grouped by the heavy-path structure
    /// each placement lands on, and every 3-sided tree applies its group
    /// as one batched operation over a shared pinned read context
    /// ([`ThreeSidedTree::apply_batch`]); flat B+-tree paths apply their
    /// ops one at a time, in input order.
    fn apply_batch(&mut self, ops: &[ClassOp]) {
        let mut groups: Vec<Vec<Op>> = vec![Vec::new(); self.structures.len()];
        for op in ops {
            let (o, ins) = match *op {
                ClassOp::Insert(o) => (o, true),
                ClassOp::Delete(o) => (o, false),
            };
            for &(path, y) in &self.placements[o.class] {
                let p = Point::new(o.attr, y, o.id);
                groups[path].push(if ins { Op::Insert(p) } else { Op::Delete(p) });
            }
        }
        for (path, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            match &mut self.structures[path] {
                PathStructure::ThreeSided(t) => t.apply_batch(&group),
                PathStructure::Flat(t) => {
                    for op in group {
                        match op {
                            Op::Insert(p) => t.insert(&mut self.disk, p.x, p.id),
                            Op::Delete(p) => {
                                let removed = t.delete(&mut self.disk, p.x, p.id);
                                debug_assert!(removed, "deleted object missing from flat path");
                            }
                        }
                    }
                }
            }
        }
        for op in ops {
            match op {
                ClassOp::Insert(_) => self.len += 1,
                ClassOp::Delete(_) => self.len -= 1,
            }
        }
    }

    fn query(&self, class: ClassId, a1: i64, a2: i64) -> Vec<u64> {
        let path = self.paths.path_of[class];
        let pos = self.paths.pos_of[class] as i64;
        match &self.structures[path] {
            PathStructure::ThreeSided(t) => {
                t.query(a1, a2, pos).into_iter().map(|p| p.id).collect()
            }
            PathStructure::Flat(t) => t.range(&self.disk, a1, a2),
        }
    }

    /// Batched flood: queries are grouped by the heavy-path structure that
    /// answers them, and each 3-sided tree runs its group as one pinned
    /// batch — the shared descent (control blocks, children-PST nodes, data
    /// pages) is billed once per residency instead of once per query.
    fn query_batch(&self, queries: &[(ClassId, i64, i64)]) -> Vec<Vec<u64>> {
        let mut outs: Vec<Vec<u64>> = vec![Vec::new(); queries.len()];
        // Group query indices by path structure.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.structures.len()];
        for (i, &(class, _, _)) in queries.iter().enumerate() {
            groups[self.paths.path_of[class]].push(i);
        }
        for (path, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            match &self.structures[path] {
                PathStructure::ThreeSided(t) => {
                    let batch: Vec<(i64, i64, i64)> = group
                        .iter()
                        .map(|&i| {
                            let (class, a1, a2) = queries[i];
                            (a1, a2, self.paths.pos_of[class] as i64)
                        })
                        .collect();
                    for (&i, pts) in group.iter().zip(t.query_batch(&batch)) {
                        outs[i] = pts.into_iter().map(|p| p.id).collect();
                    }
                }
                PathStructure::Flat(t) => {
                    for &i in group {
                        let (_, a1, a2) = queries[i];
                        outs[i] = t.range(&self.disk, a1, a2);
                    }
                }
            }
        }
        outs
    }

    fn space_pages(&self) -> usize {
        let mut pages = self.disk.pages_in_use();
        for s in &self.structures {
            if let PathStructure::ThreeSided(t) = s {
                pages += t.space_pages();
            }
        }
        pages
    }

    fn name(&self) -> &'static str {
        "rake-and-contract"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_people_queries() {
        let (h, [person, professor, student, asst_prof]) = Hierarchy::example_people();
        let mut idx = RakeClassIndex::new(h, Geometry::new(4), IoCounter::new());
        idx.insert(Object::new(person, 30, 1));
        idx.insert(Object::new(professor, 90, 2));
        idx.insert(Object::new(student, 10, 3));
        idx.insert(Object::new(asst_prof, 55, 4));
        idx.insert(Object::new(professor, 120, 5));

        let mut profs = idx.query(professor, 0, 200);
        profs.sort_unstable();
        assert_eq!(profs, vec![2, 4, 5]);
        assert_eq!(idx.query(asst_prof, 0, 200), vec![4]);
        assert_eq!(idx.query(student, 0, 200), vec![3]);
        let mut all = idx.query(person, 0, 200);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
        assert_eq!(idx.query(professor, 85, 95), vec![2]);
    }

    #[test]
    fn replication_bounded_by_thin_edges() {
        let parents: Vec<Option<usize>> = std::iter::once(None)
            .chain((1..127).map(|i| Some((i - 1) / 2)))
            .collect();
        let h = Hierarchy::from_parents(&parents);
        let idx = RakeClassIndex::new(h, Geometry::new(4), IoCounter::new());
        let bound = ccix_extmem::Geometry::log2(127) + 1;
        for c in 0..127 {
            assert!(
                idx.copies(c) <= bound,
                "class {c}: {} copies > {bound}",
                idx.copies(c)
            );
        }
    }
}
