//! The static class hierarchy and `label-class` (Fig. 4, Proposition 2.5).
//!
//! The paper assigns each class a subrange of `[0, 1)` such that descendant
//! ranges nest and an object's "class attribute" is the label of its class.
//! We realise the same reduction with exact integers: classes are numbered
//! in preorder, the range of a class is `[pre, pre + size)` over its subtree
//! — order-isomorphic to the paper's dyadic rationals, with none of the
//! precision concerns.

/// Identifier of a class (index into the hierarchy, 0-based).
pub type ClassId = usize;

/// A static forest of classes.
///
/// Construction is by parent pointers ([`Hierarchy::from_parents`]) or
/// incrementally ([`Hierarchy::add_root`] / [`Hierarchy::add_child`]).
/// The class/subclass relationship is immutable after construction, per the
/// paper's standing assumption (§1.3).
#[derive(Clone, Debug)]
pub struct Hierarchy {
    parent: Vec<Option<ClassId>>,
    children: Vec<Vec<ClassId>>,
    /// Preorder number of each class — the `label-class` label.
    pre: Vec<usize>,
    /// Subtree size of each class.
    size: Vec<usize>,
    /// Depth (root = 1) of each class.
    depth: Vec<usize>,
    roots: Vec<ClassId>,
}

impl Hierarchy {
    /// Build from a parent array: `parents[i]` is the parent of class `i`,
    /// or `None` for roots.
    ///
    /// # Panics
    /// Panics if the parent relation has a cycle or a forward reference to
    /// a nonexistent class.
    pub fn from_parents(parents: &[Option<ClassId>]) -> Self {
        let c = parents.len();
        let mut children: Vec<Vec<ClassId>> = vec![Vec::new(); c];
        let mut roots = Vec::new();
        for (i, &p) in parents.iter().enumerate() {
            match p {
                Some(p) => {
                    assert!(p < c, "parent {p} of class {i} out of range");
                    assert_ne!(p, i, "class {i} is its own parent");
                    children[p].push(i);
                }
                None => roots.push(i),
            }
        }
        let mut h = Self {
            parent: parents.to_vec(),
            children,
            pre: vec![usize::MAX; c],
            size: vec![0; c],
            depth: vec![0; c],
            roots,
        };
        h.relabel();
        h
    }

    /// Create an empty hierarchy to grow with [`Hierarchy::add_root`] /
    /// [`Hierarchy::add_child`]; call [`Hierarchy::freeze`] before use.
    pub fn new() -> Self {
        Self {
            parent: Vec::new(),
            children: Vec::new(),
            pre: Vec::new(),
            size: Vec::new(),
            depth: Vec::new(),
            roots: Vec::new(),
        }
    }

    /// Add a root class; returns its id.
    pub fn add_root(&mut self) -> ClassId {
        let id = self.parent.len();
        self.parent.push(None);
        self.children.push(Vec::new());
        self.roots.push(id);
        id
    }

    /// Add a subclass of `parent`; returns its id.
    pub fn add_child(&mut self, parent: ClassId) -> ClassId {
        assert!(parent < self.parent.len(), "unknown parent class");
        let id = self.parent.len();
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Finalise labels after incremental construction.
    pub fn freeze(&mut self) {
        self.pre = vec![usize::MAX; self.parent.len()];
        self.size = vec![0; self.parent.len()];
        self.depth = vec![0; self.parent.len()];
        self.relabel();
    }

    /// Recompute preorder labels, sizes and depths (`label-class`).
    fn relabel(&mut self) {
        let mut next = 0usize;
        let mut visited = 0usize;
        // Iterative preorder with explicit stack; (class, depth).
        for &root in &self.roots.clone() {
            let mut stack = vec![(root, 1usize)];
            while let Some((v, d)) = stack.pop() {
                assert_eq!(self.pre[v], usize::MAX, "class {v} reached twice (cycle?)");
                self.pre[v] = next;
                self.depth[v] = d;
                next += 1;
                visited += 1;
                for &ch in self.children[v].iter().rev() {
                    stack.push((ch, d + 1));
                }
            }
        }
        assert_eq!(
            visited,
            self.parent.len(),
            "hierarchy contains a cycle (unreachable classes)"
        );
        // Subtree sizes bottom-up by decreasing preorder.
        let mut order: Vec<ClassId> = (0..self.parent.len()).collect();
        order.sort_unstable_by_key(|&v| std::cmp::Reverse(self.pre[v]));
        for v in order {
            self.size[v] = 1 + self.children[v]
                .iter()
                .map(|&c| self.size[c])
                .sum::<usize>();
        }
    }

    /// Number of classes `c`.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no classes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The forest's roots.
    pub fn roots(&self) -> &[ClassId] {
        &self.roots
    }

    /// Parent of a class.
    pub fn parent(&self, c: ClassId) -> Option<ClassId> {
        self.parent[c]
    }

    /// Children (direct subclasses) of a class.
    pub fn children(&self, c: ClassId) -> &[ClassId] {
        &self.children[c]
    }

    /// The `label-class` label of a class: its preorder number. An object
    /// of class `c` carries this value in the class dimension.
    pub fn label(&self, c: ClassId) -> i64 {
        self.pre[c] as i64
    }

    /// The class's range in the class dimension: `[lo, hi)` covers exactly
    /// the labels of the class and all its descendants (Proposition 2.5).
    pub fn label_range(&self, c: ClassId) -> (i64, i64) {
        (self.pre[c] as i64, (self.pre[c] + self.size[c]) as i64)
    }

    /// Subtree size of a class (itself + descendants).
    pub fn subtree_size(&self, c: ClassId) -> usize {
        self.size[c]
    }

    /// Depth of a class (roots have depth 1).
    pub fn depth(&self, c: ClassId) -> usize {
        self.depth[c]
    }

    /// Maximum depth `k` of the forest.
    pub fn max_depth(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Is `a` an ancestor-or-self of `b`? (I.e. is `b` in `a`'s subtree —
    /// `b`'s objects belong to `a`'s full extent.)
    pub fn is_ancestor_or_self(&self, a: ClassId, b: ClassId) -> bool {
        let (lo, hi) = self.label_range(a);
        let lb = self.label(b);
        lb >= lo && lb < hi
    }

    /// The Example 2.3 hierarchy: Person → {Professor → AsstProf, Student}.
    /// Returns (hierarchy, [person, professor, student, asst_prof]).
    pub fn example_people() -> (Self, [ClassId; 4]) {
        let mut h = Self::new();
        let person = h.add_root();
        let professor = h.add_child(person);
        let student = h.add_child(person);
        let asst_prof = h.add_child(professor);
        h.freeze();
        (h, [person, professor, student, asst_prof])
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_labels_nest() {
        let (h, [person, professor, student, asst_prof]) = Hierarchy::example_people();
        assert_eq!(h.len(), 4);
        assert_eq!(h.label_range(person), (0, 4));
        // Preorder: person(0), professor(1), asst_prof(2), student(3).
        assert_eq!(h.label(professor), 1);
        assert_eq!(h.label_range(professor), (1, 3));
        assert_eq!(h.label(asst_prof), 2);
        assert_eq!(h.label(student), 3);
        assert!(h.is_ancestor_or_self(person, asst_prof));
        assert!(h.is_ancestor_or_self(professor, asst_prof));
        assert!(!h.is_ancestor_or_self(student, asst_prof));
        assert_eq!(h.max_depth(), 3);
    }

    #[test]
    fn forest_of_two_trees() {
        let h = Hierarchy::from_parents(&[None, Some(0), None, Some(2), Some(2)]);
        assert_eq!(h.roots(), &[0, 2]);
        let (lo0, hi0) = h.label_range(0);
        let (lo2, hi2) = h.label_range(2);
        assert_eq!(hi0 - lo0, 2);
        assert_eq!(hi2 - lo2, 3);
        // Ranges of distinct roots are disjoint.
        assert!(hi0 <= lo2 || hi2 <= lo0);
    }

    #[test]
    fn ranges_partition_children() {
        let h = Hierarchy::from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)]);
        let (lo, hi) = h.label_range(0);
        assert_eq!((lo, hi), (0, 6));
        let (l1, h1) = h.label_range(1);
        let (l2, h2) = h.label_range(2);
        assert!(h1 <= l2 || h2 <= l1, "sibling ranges disjoint");
        assert_eq!((h1 - l1) + (h2 - l2), 5, "children cover parent minus self");
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycle_detected() {
        let _ = Hierarchy::from_parents(&[Some(1), Some(0)]);
    }

    #[test]
    fn degenerate_path_hierarchy() {
        let parents: Vec<Option<usize>> = (0..10)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let h = Hierarchy::from_parents(&parents);
        assert_eq!(h.max_depth(), 10);
        for i in 0..10 {
            assert_eq!(h.label(i), i as i64);
            assert_eq!(h.label_range(i), (i as i64, 10));
        }
    }
}
