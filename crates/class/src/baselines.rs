//! The two straw-man strategies of §2.2.

use ccix_bptree::{BPlusTree, Entry};
use ccix_extmem::{Disk, Geometry, IoCounter};

use crate::{ClassId, ClassIndex, Hierarchy, Object};

fn page_size(geo: Geometry) -> usize {
    (24 * geo.b + 7).max(103)
}

/// "Create a single B+-tree for all objects and answer a query by … filtering
/// out the objects in the class of interest. This solution cannot compact a
/// t-sized output into t/B pages" (§2.2).
///
/// The class label rides in the entry's aux word, so filtering costs no
/// extra I/O — but the scan still touches every object in the attribute
/// range, whatever its class.
#[derive(Debug)]
pub struct SingleIndexBaseline {
    hierarchy: Hierarchy,
    disk: Disk,
    tree: BPlusTree,
}

impl SingleIndexBaseline {
    /// Create an empty index over `hierarchy`.
    pub fn new(hierarchy: Hierarchy, geo: Geometry, counter: IoCounter) -> Self {
        let mut disk = Disk::new(page_size(geo), counter);
        let tree = BPlusTree::new(&mut disk);
        Self {
            hierarchy,
            disk,
            tree,
        }
    }
}

impl ClassIndex for SingleIndexBaseline {
    fn insert(&mut self, o: Object) {
        let label = self.hierarchy.label(o.class) as u64;
        self.tree
            .insert_entry(&mut self.disk, Entry::with_aux(o.attr, o.id, label));
    }

    fn delete(&mut self, o: Object) {
        let removed = self.tree.delete(&mut self.disk, o.attr, o.id);
        debug_assert!(removed, "deleted object {o:?} is not stored");
    }

    fn query(&self, class: ClassId, a1: i64, a2: i64) -> Vec<u64> {
        let (lo, hi) = self.hierarchy.label_range(class);
        self.tree
            .range_entries(&self.disk, a1, a2)
            .into_iter()
            .filter(|e| (e.aux as i64) >= lo && (e.aux as i64) < hi)
            .map(|e| e.value)
            .collect()
    }

    fn space_pages(&self) -> usize {
        self.disk.pages_in_use()
    }

    fn name(&self) -> &'static str {
        "single-index"
    }
}

/// "Keep a B+-tree per class (index the full extent of each class)" —
/// optimal queries, but every object is replicated along its ancestor path:
/// `O(k)` copies and `O(k·log_B n)` insert I/Os for depth `k` (Lemma 4.2:
/// optimal when `k` is constant).
#[derive(Debug)]
pub struct FullExtentBaseline {
    hierarchy: Hierarchy,
    disk: Disk,
    trees: Vec<BPlusTree>,
}

impl FullExtentBaseline {
    /// Create empty per-class indexes over `hierarchy`.
    pub fn new(hierarchy: Hierarchy, geo: Geometry, counter: IoCounter) -> Self {
        let mut disk = Disk::new(page_size(geo), counter);
        let trees = (0..hierarchy.len())
            .map(|_| BPlusTree::new(&mut disk))
            .collect();
        Self {
            hierarchy,
            disk,
            trees,
        }
    }
}

impl ClassIndex for FullExtentBaseline {
    fn insert(&mut self, o: Object) {
        // Into the class's own tree and every ancestor's (full extents).
        let mut cur = Some(o.class);
        while let Some(c) = cur {
            self.trees[c].insert(&mut self.disk, o.attr, o.id);
            cur = self.hierarchy.parent(c);
        }
    }

    fn delete(&mut self, o: Object) {
        // Out of every replica along the ancestor path.
        let mut cur = Some(o.class);
        while let Some(c) = cur {
            let removed = self.trees[c].delete(&mut self.disk, o.attr, o.id);
            debug_assert!(removed, "deleted object {o:?} is not stored in class {c}");
            cur = self.hierarchy.parent(c);
        }
    }

    fn query(&self, class: ClassId, a1: i64, a2: i64) -> Vec<u64> {
        self.trees[class].range(&self.disk, a1, a2)
    }

    fn space_pages(&self) -> usize {
        self.disk.pages_in_use()
    }

    fn name(&self) -> &'static str {
        "full-extent-per-class"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_objects() -> (Hierarchy, [ClassId; 4], Vec<Object>) {
        let (h, ids) = Hierarchy::example_people();
        let [person, professor, student, asst_prof] = ids;
        let objects = vec![
            Object::new(person, 30, 1),
            Object::new(professor, 90, 2),
            Object::new(student, 10, 3),
            Object::new(asst_prof, 55, 4),
            Object::new(professor, 120, 5),
        ];
        (h, ids, objects)
    }

    #[test]
    fn single_index_filters_by_class() {
        let (h, [person, professor, _, _], objects) = people_objects();
        let mut idx = SingleIndexBaseline::new(h, Geometry::new(8), IoCounter::new());
        for o in &objects {
            idx.insert(*o);
        }
        let mut all = idx.query(person, 0, 200);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
        let mut profs = idx.query(professor, 0, 200);
        profs.sort_unstable();
        assert_eq!(profs, vec![2, 4, 5], "professor full extent incl. asst");
        assert_eq!(idx.query(professor, 50, 60), vec![4]);
    }

    #[test]
    fn full_extent_replicates_upward() {
        let (h, [person, professor, student, asst_prof], objects) = people_objects();
        let mut idx = FullExtentBaseline::new(h, Geometry::new(8), IoCounter::new());
        for o in &objects {
            idx.insert(*o);
        }
        let mut profs = idx.query(professor, 0, 200);
        profs.sort_unstable();
        assert_eq!(profs, vec![2, 4, 5]);
        assert_eq!(idx.query(student, 0, 200), vec![3]);
        assert_eq!(idx.query(asst_prof, 0, 200), vec![4]);
        let mut all = idx.query(person, 0, 200);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4, 5]);
    }
}
