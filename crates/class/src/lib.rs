//! # `ccix-class` — indexing class hierarchies (§2.2, §4)
//!
//! Objects live in exactly one class of a **static forest** of `c` classes;
//! the *full extent* of a class is its extent plus those of all descendants.
//! Class indexing (Example 2.4) asks for one-dimensional range queries by an
//! attribute **over the full extent of any class**, under object insertion.
//!
//! This crate implements every strategy the paper discusses, behind the
//! common [`ClassIndex`] trait:
//!
//! | strategy | query I/Os | insert I/Os | space (pages) |
//! |---|---|---|---|
//! | [`SingleIndexBaseline`] | `O(log_B n + t_all/B)`¹ | `O(log_B n)` | `O(n/B)` |
//! | [`FullExtentBaseline`] (Lemma 4.2) | `O(log_B n + t/B)` | `O(k·log_B n)`² | `O(k·n/B)`² |
//! | [`RangeTreeClassIndex`] (Theorem 2.6) | `O(log2 c·log_B n + t/B)` | `O(log2 c·log_B n)` | `O((n/B)·log2 c)` |
//! | [`RakeClassIndex`] (Theorem 4.7) | `O(log_B n + t/B + log2 B)` | `O(log2 c·(log_B n + (log_B n)²/B))` | `O((n/B)·log2 c)` |
//!
//! ¹ `t_all` counts *every* object in the attribute range regardless of
//! class — the baseline cannot compact its output (§2.2). ² `k` is the
//! hierarchy depth.
//!
//! The machinery: [`Hierarchy`] realises `label-class` (Fig. 4 /
//! Proposition 2.5) with exact preorder integer ranges; [`heavy`] implements
//! `label-edges` (Fig. 22 / Lemma 4.5, the Sleator–Tarjan thick/thin
//! decomposition); [`RakeClassIndex`] is `rake-and-contract` (Fig. 23 /
//! Lemma 4.6) over the 3-sided metablock trees of `ccix-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod builder;
pub mod heavy;
mod hierarchy;
mod rake;
mod rangetree;

pub use baselines::{FullExtentBaseline, SingleIndexBaseline};
pub use builder::{IndexBuilder, Strategy};
pub use hierarchy::{ClassId, Hierarchy};
pub use rake::RakeClassIndex;
pub use rangetree::RangeTreeClassIndex;

/// An object to be indexed: a class, an attribute value, and a unique id.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Object {
    /// The class the object belongs to (its extent).
    pub class: ClassId,
    /// The indexed attribute (e.g. income in Example 2.4).
    pub attr: i64,
    /// Unique object id.
    pub id: u64,
}

impl Object {
    /// Construct an object.
    pub fn new(class: ClassId, attr: i64, id: u64) -> Self {
        Self { class, attr, id }
    }
}

/// One operation of a mixed batch (see [`ClassIndex::apply_batch`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassOp {
    /// Insert the object.
    Insert(Object),
    /// Delete a previously inserted object.
    Delete(Object),
}

/// A class-indexing strategy: answer attribute-range queries over full
/// extents, under object insertion and deletion.
pub trait ClassIndex {
    /// Insert an object.
    fn insert(&mut self, object: Object);

    /// Delete a previously inserted object — exactly the `(class, attr,
    /// id)` triple it was inserted with. Every strategy removes the object
    /// from each structure its insertion replicated it into (ancestor
    /// trees, range-tree path, heavy-path placements), at the strategy's
    /// insert budget; the rake index's 3-sided trees use the tombstone
    /// machinery of [`ccix_core::ThreeSidedTree::delete`]. Deleting an
    /// object that is not stored is a contract violation.
    fn delete(&mut self, object: Object);

    /// Delete a flood of objects, one structure-level batch per backing
    /// structure where the strategy supports it (the rake index groups by
    /// heavy-path structure and uses the trees' batched tombstone routing);
    /// the default implementation deletes one at a time.
    fn delete_batch(&mut self, objects: &[Object]) {
        for o in objects {
            self.delete(*o);
        }
    }

    /// Apply a mixed batch of inserts and deletes, one structure-level
    /// batch per backing structure where the strategy supports it (the
    /// rake index groups ops by heavy-path structure and uses the trees'
    /// batched mixed routing, [`ccix_core::ThreeSidedTree::apply_batch`]);
    /// the default implementation applies them one at a time.
    ///
    /// Ops must be independent: deleting an object the same batch inserts
    /// is a contract violation.
    fn apply_batch(&mut self, ops: &[ClassOp]) {
        for op in ops {
            match *op {
                ClassOp::Insert(o) => self.insert(o),
                ClassOp::Delete(o) => self.delete(o),
            }
        }
    }

    /// Ids of all objects in the **full extent** of `class` whose attribute
    /// lies in `[a1, a2]`.
    fn query(&self, class: ClassId, a1: i64, a2: i64) -> Vec<u64>;

    /// Answer a flood of full-extent range queries, one result per input
    /// query, in input order.
    ///
    /// The default implementation answers them one at a time; strategies
    /// whose backing structures support batched descent (the rake index's
    /// 3-sided metablock trees) override it to share each structure's
    /// descent across the queries that land on it.
    fn query_batch(&self, queries: &[(ClassId, i64, i64)]) -> Vec<Vec<u64>> {
        queries
            .iter()
            .map(|&(c, a1, a2)| self.query(c, a1, a2))
            .collect()
    }

    /// As [`ClassIndex::query_batch`], reusing `outs` for the result
    /// buffers — the canonical `_into` shape of the batch surface (see
    /// `docs/architecture.md` § Batched operations). The default routes
    /// through [`ClassIndex::query_batch`] so every strategy's batched
    /// descent override is reused.
    fn query_batch_into(&self, queries: &[(ClassId, i64, i64)], outs: &mut Vec<Vec<u64>>) {
        outs.clear();
        outs.extend(self.query_batch(queries));
    }

    /// Disk blocks occupied.
    fn space_pages(&self) -> usize;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}
