//! Property tests (on the shared testkit harness) over random forests:
//! labeling invariants, heavy-path bounds, and agreement of the two
//! non-baseline strategies with a naive oracle under interleaved inserts.

use ccix_class::{heavy, ClassIndex, Hierarchy, Object, RakeClassIndex, RangeTreeClassIndex};
use ccix_extmem::{Geometry, IoCounter};
use ccix_testkit::{check, oracle, workloads};

#[test]
fn label_ranges_nest_and_partition() {
    check::trials("class::label_ranges_nest_and_partition", 64, 0xC1A, |rng| {
        let parents = workloads::random_forest(rng, 40);
        let h = Hierarchy::from_parents(&parents);
        let c = h.len();
        for a in 0..c {
            let (lo, hi) = h.label_range(a);
            assert!(lo < hi);
            assert_eq!((hi - lo) as usize, h.subtree_size(a));
            // Label of a is the low end of its range.
            assert_eq!(h.label(a), lo);
            for b in 0..c {
                let (blo, bhi) = h.label_range(b);
                let nested = (lo <= blo && bhi <= hi) || (blo <= lo && hi <= bhi);
                let disjoint = bhi <= lo || hi <= blo;
                assert!(nested || disjoint, "ranges neither nest nor are disjoint");
                // Range containment must agree with ancestry.
                assert_eq!(
                    h.is_ancestor_or_self(a, b),
                    lo <= blo && bhi <= hi,
                    "ancestry/range mismatch for {a} vs {b}"
                );
            }
        }
    });
}

#[test]
fn heavy_paths_respect_lemma_4_5() {
    check::trials("class::heavy_paths_respect_lemma_4_5", 64, 0xC1B, |rng| {
        let parents = workloads::random_forest(rng, 64);
        let h = Hierarchy::from_parents(&parents);
        let hp = heavy::decompose(&h);
        let total: usize = hp.paths.iter().map(Vec::len).sum();
        assert_eq!(total, h.len(), "paths partition the classes");
        let bound = Geometry::log2(h.len());
        for c in 0..h.len() {
            assert!(hp.thin_edges_to_root(&h, c) <= bound);
        }
    });
}

#[test]
fn strategies_agree_with_oracle() {
    check::trials("class::strategies_agree_with_oracle", 64, 0xC1C, |rng| {
        let parents = workloads::random_forest(rng, 24);
        let h = Hierarchy::from_parents(&parents);
        let geo = Geometry::new(4);
        let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut all: Vec<Object> = Vec::new();
        let n_objects = rng.gen_range(1..120usize);
        for i in 0..n_objects {
            let o = Object::new(rng.gen_range(0..h.len()), rng.gen_range(0i64..60), i as u64);
            rake.insert(o);
            rtree.insert(o);
            all.push(o);
        }
        let n_queries = rng.gen_range(1..10usize);
        for _ in 0..n_queries {
            let class = rng.gen_range(0..h.len());
            let a = rng.gen_range(0i64..60);
            let w = rng.gen_range(0i64..30);
            let want = oracle::class_range_ids(&h, &all, class, a, a + w);
            oracle::assert_same_ids(rake.query(class, a, a + w), want.clone(), "rake");
            oracle::assert_same_ids(rtree.query(class, a, a + w), want, "rangetree");
        }
    });
}
