//! Property tests over random forests: labeling invariants, heavy-path
//! bounds, and agreement of the two non-baseline strategies with a naive
//! oracle under interleaved inserts.

use ccix_class::{heavy, ClassIndex, Hierarchy, Object, RakeClassIndex, RangeTreeClassIndex};
use ccix_extmem::{Geometry, IoCounter};
use proptest::prelude::*;

/// Strategy: a random parent array over `c` classes (forest shaped).
fn forest(max_c: usize) -> impl Strategy<Value = Vec<Option<usize>>> {
    (1..=max_c).prop_flat_map(|c| {
        let mut parts: Vec<BoxedStrategy<Option<usize>>> = Vec::with_capacity(c);
        for i in 0..c {
            if i == 0 {
                parts.push(Just(None).boxed());
            } else {
                parts.push(
                    prop_oneof![
                        1 => Just(None),
                        9 => (0..i).prop_map(Some),
                    ]
                    .boxed(),
                );
            }
        }
        parts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn label_ranges_nest_and_partition(parents in forest(40)) {
        let h = Hierarchy::from_parents(&parents);
        let c = h.len();
        for a in 0..c {
            let (lo, hi) = h.label_range(a);
            prop_assert!(lo < hi);
            prop_assert_eq!((hi - lo) as usize, h.subtree_size(a));
            // Label of a is the low end of its range.
            prop_assert_eq!(h.label(a), lo);
            for b in 0..c {
                let (blo, bhi) = h.label_range(b);
                let nested = (lo <= blo && bhi <= hi) || (blo <= lo && hi <= bhi);
                let disjoint = bhi <= lo || hi <= blo;
                prop_assert!(nested || disjoint, "ranges neither nest nor are disjoint");
                // Range containment must agree with ancestry.
                prop_assert_eq!(
                    h.is_ancestor_or_self(a, b),
                    lo <= blo && bhi <= hi,
                    "ancestry/range mismatch for {} vs {}", a, b
                );
            }
        }
    }

    #[test]
    fn heavy_paths_respect_lemma_4_5(parents in forest(64)) {
        let h = Hierarchy::from_parents(&parents);
        let hp = heavy::decompose(&h);
        let total: usize = hp.paths.iter().map(Vec::len).sum();
        prop_assert_eq!(total, h.len(), "paths partition the classes");
        let bound = Geometry::log2(h.len());
        for c in 0..h.len() {
            prop_assert!(hp.thin_edges_to_root(&h, c) <= bound);
        }
    }

    #[test]
    fn strategies_agree_with_oracle(
        parents in forest(24),
        objects in proptest::collection::vec((0usize..24, 0i64..60), 1..120),
        queries in proptest::collection::vec((0usize..24, 0i64..60, 0i64..30), 1..10),
    ) {
        let h = Hierarchy::from_parents(&parents);
        let geo = Geometry::new(4);
        let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut all: Vec<Object> = Vec::new();
        for (i, &(class, attr)) in objects.iter().enumerate() {
            let o = Object::new(class % h.len(), attr, i as u64);
            rake.insert(o);
            rtree.insert(o);
            all.push(o);
        }
        for &(class, a, w) in &queries {
            let class = class % h.len();
            let mut want: Vec<u64> = all
                .iter()
                .filter(|o| h.is_ancestor_or_self(class, o.class))
                .filter(|o| o.attr >= a && o.attr <= a + w)
                .map(|o| o.id)
                .collect();
            want.sort_unstable();
            let mut got = rake.query(class, a, a + w);
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "rake");
            let mut got = rtree.query(class, a, a + w);
            got.sort_unstable();
            prop_assert_eq!(&got, &want, "rangetree");
        }
    }
}
