//! Cross-strategy tests: all four class-indexing strategies must agree with
//! a naive oracle and with each other, and respect their stated bounds.

use ccix_class::{
    ClassIndex, FullExtentBaseline, Hierarchy, Object, RakeClassIndex, RangeTreeClassIndex,
    SingleIndexBaseline,
};
use ccix_extmem::{Geometry, IoCounter};

fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }
}

/// A random forest with `c` classes and a given root probability.
fn random_hierarchy(c: usize, seed: u64) -> Hierarchy {
    let mut next = xorshift(seed);
    let parents: Vec<Option<usize>> = (0..c)
        .map(|i| {
            if i == 0 || next().is_multiple_of(10) {
                None
            } else {
                Some((next() % i as u64) as usize)
            }
        })
        .collect();
    Hierarchy::from_parents(&parents)
}

fn random_objects(h: &Hierarchy, n: usize, seed: u64, attr_range: i64) -> Vec<Object> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|i| {
            Object::new(
                (next() % h.len() as u64) as usize,
                (next() % attr_range as u64) as i64,
                i as u64,
            )
        })
        .collect()
}

fn oracle(h: &Hierarchy, objects: &[Object], class: usize, a1: i64, a2: i64) -> Vec<u64> {
    let mut v: Vec<u64> = objects
        .iter()
        .filter(|o| h.is_ancestor_or_self(class, o.class) && o.attr >= a1 && o.attr <= a2)
        .map(|o| o.id)
        .collect();
    v.sort_unstable();
    v
}

fn check_all(
    h: &Hierarchy,
    objects: &[Object],
    strategies: &[&dyn ClassIndex],
    queries: &[(usize, i64, i64)],
) {
    for &(class, a1, a2) in queries {
        let want = oracle(h, objects, class, a1, a2);
        for s in strategies {
            let mut got = s.query(class, a1, a2);
            got.sort_unstable();
            assert_eq!(
                got,
                want,
                "{} disagrees on class {class} attrs [{a1},{a2}]",
                s.name()
            );
        }
    }
}

#[test]
fn all_strategies_agree_small() {
    let geo = Geometry::new(4);
    for trial in 0..6u64 {
        let c = [1usize, 2, 4, 7, 15, 40][trial as usize];
        let h = random_hierarchy(c, 0x51EE + trial);
        let objects = random_objects(&h, 400, 0xFACE + trial, 100);

        let mut single = SingleIndexBaseline::new(h.clone(), geo, IoCounter::new());
        let mut full = FullExtentBaseline::new(h.clone(), geo, IoCounter::new());
        let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
        let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
        for o in &objects {
            single.insert(*o);
            full.insert(*o);
            rtree.insert(*o);
            rake.insert(*o);
        }
        let mut next = xorshift(trial);
        let queries: Vec<(usize, i64, i64)> = (0..25)
            .map(|_| {
                let class = (next() % c as u64) as usize;
                let a = (next() % 110) as i64 - 5;
                let w = (next() % 60) as i64;
                (class, a, a + w)
            })
            .collect();
        check_all(&h, &objects, &[&single, &full, &rtree, &rake], &queries);
    }
}

#[test]
fn degenerate_path_hierarchy_all_strategies() {
    // The Lemma 4.3 case: one long chain. The rake index must use a single
    // 3-sided structure with no replication.
    let c = 30;
    let parents: Vec<Option<usize>> = (0..c)
        .map(|i| if i == 0 { None } else { Some(i - 1) })
        .collect();
    let h = Hierarchy::from_parents(&parents);
    let geo = Geometry::new(4);
    let objects = random_objects(&h, 600, 0xD1, 50);

    let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
    let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
    for o in &objects {
        rake.insert(*o);
        rtree.insert(*o);
    }
    for class in 0..c {
        assert_eq!(rake.copies(class), 1, "chain has no thin edges");
    }
    let queries: Vec<(usize, i64, i64)> = (0..c).map(|k| (k, 0, 49)).collect();
    check_all(&h, &objects, &[&rake, &rtree], &queries);
}

#[test]
fn star_hierarchy_all_strategies() {
    // c-1 leaves under one root: the Theorem 2.8 shape.
    let c = 50;
    let parents: Vec<Option<usize>> = (0..c)
        .map(|i| if i == 0 { None } else { Some(0) })
        .collect();
    let h = Hierarchy::from_parents(&parents);
    let geo = Geometry::new(4);
    let objects = random_objects(&h, 800, 0x57A7, 200);

    let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
    let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
    let mut full = FullExtentBaseline::new(h.clone(), geo, IoCounter::new());
    for o in &objects {
        rake.insert(*o);
        rtree.insert(*o);
        full.insert(*o);
    }
    let queries: Vec<(usize, i64, i64)> = (0..c).step_by(7).map(|k| (k, 50, 150)).collect();
    check_all(&h, &objects, &[&rake, &rtree, &full], &queries);
}

#[test]
fn larger_randomized_agreement() {
    let geo = Geometry::new(8);
    let h = random_hierarchy(120, 0xBEEF);
    let objects = random_objects(&h, 5_000, 0xF00, 1_000);
    let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
    let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
    for o in &objects {
        rtree.insert(*o);
        rake.insert(*o);
    }
    let mut next = xorshift(0xAA);
    let queries: Vec<(usize, i64, i64)> = (0..40)
        .map(|_| {
            let class = (next() % 120) as usize;
            let a = (next() % 1_000) as i64;
            let w = (next() % 300) as i64;
            (class, a, a + w)
        })
        .collect();
    check_all(&h, &objects, &[&rtree, &rake], &queries);
}

/// Theorem 2.6 bounds: range-tree query I/Os `O(log2 c · log_B n + t/B)`,
/// space `O((n/B) log2 c)`.
#[test]
fn rangetree_bounds() {
    let geo = Geometry::new(16);
    let c = 255;
    let parents: Vec<Option<usize>> = std::iter::once(None)
        .chain((1..c).map(|i| Some((i - 1) / 2)))
        .collect();
    let h = Hierarchy::from_parents(&parents);
    let n = 30_000;
    let objects = random_objects(&h, n, 0x26, 100_000);
    let counter = IoCounter::new();
    let mut idx = RangeTreeClassIndex::new(h.clone(), geo, counter.clone());
    for o in &objects {
        idx.insert(*o);
    }

    let log2c = Geometry::log2(c);
    let space_budget = 4 * (log2c + 1) * geo.out_blocks(n) + 4 * c;
    assert!(
        idx.space_pages() <= space_budget,
        "space {} > {space_budget}",
        idx.space_pages()
    );

    let mut next = xorshift(1);
    for _ in 0..25 {
        let class = (next() % c as u64) as usize;
        let a = (next() % 100_000) as i64;
        let before = counter.snapshot();
        let got = idx.query(class, a, a + 5_000);
        let cost = counter.since(before);
        let bound = 3 * 2 * log2c * geo.log_b(n) + 3 * geo.out_blocks(got.len()) + 8;
        assert!(
            cost.reads <= bound as u64,
            "class {class}: {} reads > {bound} (t={})",
            cost.reads,
            got.len()
        );
    }
}

/// Theorem 4.7 bounds: rake query I/Os `O(log_B n + t/B + log2 B)` —
/// crucially independent of `c` — and space `O((n/B) log2 c)`.
#[test]
fn rake_bounds() {
    let geo = Geometry::new(16);
    let c = 255;
    let parents: Vec<Option<usize>> = std::iter::once(None)
        .chain((1..c).map(|i| Some((i - 1) / 2)))
        .collect();
    let h = Hierarchy::from_parents(&parents);
    let n = 30_000;
    let objects = random_objects(&h, n, 0x47, 100_000);
    let counter = IoCounter::new();
    let mut idx = RakeClassIndex::new(h.clone(), geo, counter.clone());
    for o in &objects {
        idx.insert(*o);
    }

    let log2c = Geometry::log2(c);
    let space_budget = 14 * (log2c + 1) * geo.out_blocks(n) + 6 * c;
    assert!(
        idx.space_pages() <= space_budget,
        "space {} > {space_budget}",
        idx.space_pages()
    );

    let mut next = xorshift(2);
    for _ in 0..25 {
        let class = (next() % c as u64) as usize;
        let a = (next() % 100_000) as i64;
        let before = counter.snapshot();
        let got = idx.query(class, a, a + 5_000);
        let cost = counter.since(before);
        // No log2 c factor on the search term.
        let bound =
            10 * geo.log_b(n) + 5 * geo.out_blocks(got.len()) + 6 * Geometry::log2(geo.b3()) + 12;
        assert!(
            cost.reads <= bound as u64,
            "class {class}: {} reads > {bound} (t={})",
            cost.reads,
            got.len()
        );
    }
}

/// §2.2's indictment of the single-index baseline: on a selective class its
/// query cost tracks the whole attribute-range population, not the output.
#[test]
fn single_index_cannot_compact_output() {
    let geo = Geometry::new(16);
    // Root plus 20 leaf classes; query a single leaf.
    let c = 21;
    let parents: Vec<Option<usize>> = (0..c)
        .map(|i| if i == 0 { None } else { Some(0) })
        .collect();
    let h = Hierarchy::from_parents(&parents);
    let n = 20_000;
    let objects = random_objects(&h, n, 0x88, 1_000);

    let sc = IoCounter::new();
    let mut single = SingleIndexBaseline::new(h.clone(), geo, sc.clone());
    let rc = IoCounter::new();
    let mut rake = RakeClassIndex::new(h.clone(), geo, rc.clone());
    for o in &objects {
        single.insert(*o);
        rake.insert(*o);
    }

    let leaf = 7usize;
    let before = sc.snapshot();
    let a = single.query(leaf, 0, 999);
    let single_cost = sc.since(before).reads;
    let before = rc.snapshot();
    let mut b = rake.query(leaf, 0, 999);
    let rake_cost = rc.since(before).reads;

    let mut a_sorted = a;
    a_sorted.sort_unstable();
    b.sort_unstable();
    assert_eq!(a_sorted, b);
    assert!(
        3 * rake_cost < single_cost,
        "rake ({rake_cost}) should beat the filtering baseline ({single_cost}) by ≥3x"
    );
}
