//! Theorem 4.7's additive search term on Star hierarchies at c = 4095
//! (the ROADMAP open item).
//!
//! A Star hierarchy (one root, c−1 leaf children) is the adversarial case
//! for class indexing: the root's full extent is *everything*, and the
//! rake-and-contract decomposition maps the root to a heavy path backed by
//! a 3-sided metablock tree while every leaf contracts to a flat structure.
//! Theorem 4.7 claims query cost `O(log_B n + t/B + log2 B)` — with the
//! additive term independent of `c` (4095 here) and coming only from the
//! one children-PST descent of the 3-sided search (`log2 B³ = 3·log2 B`).
//!
//! Measured constants (narrow queries, t ≈ 0, n = 40_000, c = 4095, this
//! workspace's seeds — regenerate by running this test with
//! `-- --nocapture`):
//!
//! | B  | log_B n | 3·log2 B | avg I/O | max I/O | max/(log_B n + 3·log2 B) |
//! |----|---------|----------|---------|---------|--------------------------|
//! | 16 |       4 |       12 |     1.1 |      16 |                     1.00 |
//! | 64 |       3 |       18 |     1.0 |       7 |                     0.33 |
//!
//! The averages are dominated by the 4094 leaf classes, whose contracted
//! flat structures answer in ~1 I/O; the maxima are the root-class queries
//! through the 3-sided tree, and they sit *at or below*
//! `log_B n + 3·log2 B` with constant ≤ 1 — i.e. the Theorem 4.7 additive
//! term is real but its measured constant is ~1 block per `log2` level at
//! B = 16 and shrinks as B grows (the PST descent gets shallower relative
//! to the bound). Crucially it does not track `c`: a 63-class star costs
//! the same narrow-query I/O to within 2 blocks while `c` shrinks 65×.

use ccix_class::{ClassIndex, RakeClassIndex};
use ccix_extmem::{Geometry, IoCounter};
use ccix_testkit::workloads::{self, HierarchyShape};
use ccix_testkit::DetRng;

const C: usize = 4095;
const N: usize = 40_000;
const ATTR_RANGE: i64 = 1_000_000;

/// Load a rake index over a Star hierarchy with `c` classes.
fn star_index(c: usize, b: usize) -> (RakeClassIndex, IoCounter) {
    let h = workloads::hierarchy(HierarchyShape::Star, c, 0x57A2);
    let objects = workloads::uniform_objects(&h, N, 0x57A3, ATTR_RANGE);
    let counter = IoCounter::new();
    let mut idx = RakeClassIndex::new(h, Geometry::new(b), counter.clone());
    for o in &objects {
        idx.insert(*o);
    }
    (idx, counter)
}

/// Narrow queries (t ≈ 0) isolate the search term. The measured cost must
/// stay within a small constant of `log_B n + 3·log2 B`, for every class of
/// the 4095-class star — c never enters the bound.
#[test]
fn narrow_queries_pay_logb_plus_log2b_only() {
    for &b in &[16usize, 64] {
        let geo = Geometry::new(b);
        let (idx, counter) = star_index(C, b);
        let mut rng = DetRng::new(0x57A4 + b as u64);
        let additive = 3 * Geometry::log2(geo.b); // log2 B³
        let bound = 3 * geo.log_b(N) + 2 * additive + 8;
        let (mut sum, mut max, mut queries) = (0u64, 0u64, 0u64);
        // Sweep every 16th class plus the root so both the flat leaf
        // structures and the 3-sided root path are exercised.
        for class in (0..C).step_by(16).chain([0]) {
            let a = rng.gen_range(0..ATTR_RANGE - 20);
            let before = counter.snapshot();
            let out = idx.query(class, a, a + 10);
            let cost = counter.since(before).reads;
            sum += cost;
            max = max.max(cost);
            queries += 1;
            assert!(
                cost <= bound as u64,
                "B={b} class={class}: narrow query cost {cost} (t={}) > bound {bound}",
                out.len()
            );
        }
        println!(
            "star c={C} B={b}: narrow avg {:.1}, max {max}, bound {bound} (log_B n = {}, 3·log2 B = {additive})",
            sum as f64 / queries as f64,
            geo.log_b(N)
        );
    }
}

/// The additive term is independent of c: the same workload on a 64-class
/// star costs the same narrow-query I/O (±2) as on the 4095-class star,
/// while c grows 64×.
#[test]
fn narrow_query_cost_is_independent_of_c() {
    let b = 64;
    let (big, big_counter) = star_index(C, b);
    let (small, small_counter) = star_index(63, b);
    let mut rng = DetRng::new(0x57A5);
    let mut worst_gap = 0i64;
    for i in 0..48 {
        let a = rng.gen_range(0..ATTR_RANGE - 20);
        // Compare matching leaf classes (class 0 is the root in both).
        let big_class = 1 + (i * 61) % (C - 1);
        let small_class = 1 + (i * 7) % 62;
        let before = big_counter.snapshot();
        let _ = big.query(big_class, a, a + 10);
        let big_cost = big_counter.since(before).reads as i64;
        let before = small_counter.snapshot();
        let _ = small.query(small_class, a, a + 10);
        let small_cost = small_counter.since(before).reads as i64;
        worst_gap = worst_gap.max(big_cost - small_cost);
    }
    assert!(
        worst_gap <= 2,
        "65x more classes must not cost more than 2 extra I/Os on a narrow query (gap {worst_gap})"
    );
}
