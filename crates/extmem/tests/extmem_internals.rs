//! Integration tests for the external-memory substrate's internals:
//! buffer-pool eviction against a reference LRU model, snapshot/since
//! arithmetic, and Geometry edge cases (the smallest legal `B` and
//! overflow-prone large `B`).

use ccix_extmem::{BufferPool, Disk, Geometry, IoCounter, IoSnapshot, PageId, TypedStore};
use ccix_testkit::check;

// ------------------------------------------------------------------- pool

/// A reference LRU: the same policy as `BufferPool`, in the most obvious
/// encoding (a recency-ordered vector of page ids).
struct ModelLru {
    frames: usize,
    order: Vec<PageId>, // most recent last
}

impl ModelLru {
    fn new(frames: usize) -> Self {
        Self {
            frames,
            order: Vec::new(),
        }
    }

    /// Touch a page; returns true when it was already cached (a hit).
    fn touch(&mut self, id: PageId) -> bool {
        let hit = if let Some(pos) = self.order.iter().position(|&p| p == id) {
            self.order.remove(pos);
            true
        } else {
            if self.order.len() == self.frames {
                self.order.remove(0);
            }
            false
        };
        self.order.push(id);
        hit
    }

    fn invalidate(&mut self, id: PageId) {
        self.order.retain(|&p| p != id);
    }
}

#[test]
fn pool_eviction_matches_reference_lru() {
    check::trials(
        "extmem::pool_eviction_matches_reference_lru",
        40,
        0xE41,
        |rng| {
            let frames = rng.gen_range(1usize..6);
            let n_pages = rng.gen_range(1usize..12);
            let counter = IoCounter::new();
            let mut disk = Disk::new(8, counter.clone());
            let ids: Vec<PageId> = (0..n_pages)
                .map(|i| {
                    let id = disk.alloc();
                    disk.write(id, &[i as u8; 8]);
                    id
                })
                .collect();
            let mut pool = BufferPool::new(frames);
            let mut model = ModelLru::new(frames);
            for _ in 0..200 {
                let id = *rng.choose(&ids).expect("nonempty");
                if rng.gen_bool(0.1) {
                    pool.invalidate(id);
                    model.invalidate(id);
                    continue;
                }
                let want_hit = model.touch(id);
                let reads_before = counter.reads();
                let buf = pool.read(&disk, id);
                assert_eq!(buf, disk.read_unbilled(id), "cache returned stale bytes");
                let was_hit = counter.reads() == reads_before;
                assert_eq!(
                    was_hit, want_hit,
                    "pool and reference LRU disagree (frames={frames}, page={id:?})"
                );
            }
        },
    );
}

#[test]
fn pool_write_through_always_costs_io_and_keeps_cache_fresh() {
    let counter = IoCounter::new();
    let mut disk = Disk::new(4, counter.clone());
    let id = disk.alloc();
    disk.write(id, &[0u8; 4]);
    let mut pool = BufferPool::new(1);
    let writes_before = counter.writes();
    for round in 1..=5u8 {
        pool.write(&mut disk, id, &[round; 4]);
        assert_eq!(counter.writes(), writes_before + u64::from(round));
        let reads_before = counter.reads();
        assert_eq!(pool.read(&disk, id), vec![round; 4]);
        assert_eq!(counter.reads(), reads_before, "read after write must hit");
    }
}

#[test]
fn single_frame_pool_thrashes_between_two_pages() {
    let counter = IoCounter::new();
    let mut disk = Disk::new(4, counter.clone());
    let a = disk.alloc();
    let b = disk.alloc();
    disk.write(a, &[1u8; 4]);
    disk.write(b, &[2u8; 4]);
    let mut pool = BufferPool::new(1);
    let before = counter.reads();
    for _ in 0..5 {
        let _ = pool.read(&disk, a);
        let _ = pool.read(&disk, b);
    }
    assert_eq!(
        counter.reads() - before,
        10,
        "every alternating read misses"
    );
    assert_eq!(pool.hits(), 0);
    assert_eq!(pool.misses(), 10);
}

#[test]
#[should_panic(expected = "at least one frame")]
fn zero_frame_pool_rejected() {
    let _ = BufferPool::new(0);
}

// ------------------------------------------------- snapshot / since maths

#[test]
fn since_and_delta_compose() {
    let c = IoCounter::new();
    let s0 = c.snapshot();
    c.add_reads(3);
    let s1 = c.snapshot();
    c.add_writes(4);
    c.add_reads(1);
    let s2 = c.snapshot();

    // since(s) == s.delta(now) for every snapshot.
    assert_eq!(c.since(s0), s0.delta(s2));
    assert_eq!(c.since(s1), s1.delta(s2));
    // Deltas over adjacent windows add up to the delta over the union.
    let d01 = s0.delta(s1);
    let d12 = s1.delta(s2);
    let d02 = s0.delta(s2);
    assert_eq!(d01.reads + d12.reads, d02.reads);
    assert_eq!(d01.writes + d12.writes, d02.writes);
    assert_eq!(d01.total() + d12.total(), d02.total());
    assert_eq!(
        d02,
        IoSnapshot {
            reads: 4,
            writes: 4
        }
    );
}

#[test]
fn empty_window_has_zero_delta() {
    let c = IoCounter::new();
    c.add_reads(7);
    let s = c.snapshot();
    assert_eq!(c.since(s), IoSnapshot::default());
    assert_eq!(s.delta(s).total(), 0);
}

#[test]
fn counters_shared_across_stores_accumulate_once() {
    let c = IoCounter::new();
    let mut a: TypedStore<u8> = TypedStore::new(2, c.clone());
    let mut b: TypedStore<u8> = TypedStore::new(2, c.clone());
    let s = c.snapshot();
    let pa = a.alloc(vec![1]);
    let pb = b.alloc(vec![2]);
    let _ = a.read(pa);
    let _ = b.read(pb);
    let d = c.since(s);
    assert_eq!(d.reads, 2);
    assert_eq!(d.writes, 2);
}

// ---------------------------------------------------------- geometry edges

#[test]
#[should_panic(expected = "at least 2")]
fn geometry_b1_rejected() {
    // B = 1 would make every "block" a record and log_B meaningless.
    let _ = Geometry::new(1);
}

#[test]
fn geometry_b2_is_the_smallest_legal_block() {
    let g = Geometry::new(2);
    assert_eq!(g.b2(), 4);
    assert_eq!(g.b3(), 8);
    assert_eq!(g.out_blocks(5), 3);
    // log_2 is just the binary logarithm here.
    assert_eq!(g.log_b(1024), 10);
    assert_eq!(g.log_b(1025), 11);
}

#[test]
fn geometry_near_max_b_does_not_overflow() {
    // The largest B whose B³ still fits in usize (on 64-bit: 2^21 when
    // cubed gives 2^63). b2/b3 must not wrap and bounds stay sane.
    let b = 1usize << 21;
    let g = Geometry::new(b);
    assert_eq!(g.b2(), 1usize << 42);
    assert_eq!(g.b3(), 1usize << 63);
    assert_eq!(g.log_b(b), 1);
    assert_eq!(g.log_b(b + 1), 2);
    assert_eq!(g.out_blocks(usize::MAX), usize::MAX / b + 1);
}

#[test]
fn geometry_log_b_saturates_instead_of_overflowing() {
    // log_b uses saturating_mul internally: astronomically large n must
    // terminate and give the ceiling, not loop or wrap.
    let g = Geometry::new(2);
    assert_eq!(g.log_b(usize::MAX), 64);
    let g = Geometry::new(usize::MAX);
    assert_eq!(g.log_b(usize::MAX), 1);
    assert_eq!(g.log_b(2), 1);
}

#[test]
fn geometry_log2_covers_boundaries() {
    assert_eq!(Geometry::log2(0), 1);
    assert_eq!(Geometry::log2(1), 1);
    assert_eq!(Geometry::log2(2), 1);
    assert_eq!(Geometry::log2(usize::MAX), 64);
}
