//! Page-store backends: the in-memory model and a real file.
//!
//! Every store in this crate keeps its pages in memory — that *is* the
//! paper's cost model, and it stays the source of truth for every exact-I/O
//! gate. [`BackendSpec`] adds a second, physical backend: a store opened on
//! [`BackendSpec::File`] additionally mirrors every page onto an actual
//! file through [`crate::fs`] positioned I/O, so the same charged
//! page-transfer counts turn into measurable milliseconds.
//!
//! The contract between the two backends:
//!
//! * **The model is authoritative.** Page contents, I/O charges, free-list
//!   order and fork semantics are decided by the in-memory tables exactly
//!   as before; a file-backed store produces bit-identical counters and
//!   query results to a model-backed one on the same operation sequence.
//! * **Every mutation is written through.** `alloc`/`write`/`append`/
//!   `alloc_run` serialize the page with [`crate::ser::FixedBytes`] and
//!   `pwrite` it into the page's file slot; `free`/`free_run` return the
//!   slot to the free list so the next allocation recycles it on disk.
//! * **Every charged read really reads.** Each read the cost model charges
//!   performs the physical read path too: a bounded in-process page cache
//!   is consulted first (a **warm** hit costs no syscall), and on a miss
//!   the slot is `pread` from the file (a **cold** read). Uncharged
//!   accesses (`read_unbilled`, pin-resident re-touches) stay free on both
//!   backends, which is exactly the model's working-memory assumption.
//! * **Forks are model-backed.** [`crate::TypedStore::fork`] publishes an
//!   in-memory epoch; snapshot readers never touch the writer's file, so
//!   overwrites of copy-on-write-shared slots cannot tear a snapshot.
//!
//! Slots are page-aligned ([`SLOT_ALIGN`]) and sized from the store's
//! capacity, so a record page at `B = 4096 / record size` occupies exactly
//! one 4 KiB disk block. A sidecar `<file>.meta` (written by `persist`,
//! atomically via temp-file + rename) carries the free list and per-page
//! record counts, so `open_from_file` can rebuild the store from the file
//! pair alone.
//!
//! In debug builds every file read is compared byte-for-byte against the
//! encoding of the model page it mirrors, so any divergence between the
//! backends fails the nearest test instead of skewing a benchmark.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::fs::{read_exact_at, retry_interrupted, write_all_at, Fs, RawFile, RealFs};
use crate::ser::{decode_records, encode_records, FixedBytes};
use crate::store::PageId;

/// File slots are padded to this alignment (one conventional disk block),
/// so positioned reads and writes never straddle a block boundary.
pub const SLOT_ALIGN: usize = 4096;

/// Default bound on the in-process page cache, in pages.
pub const DEFAULT_CACHE_PAGES: usize = 64;

/// Which physical backend a store opens on.
///
/// The default, [`BackendSpec::Model`], is the in-memory simulator every
/// structure has always run on. [`BackendSpec::File`] mirrors pages onto a
/// real file (see the module docs for the contract).
#[derive(Clone, Debug, Default)]
pub enum BackendSpec {
    /// In-memory pages only — the paper's cost model, and the source of
    /// truth for all exact-I/O gates.
    #[default]
    Model,
    /// Pages mirrored onto real files under the configured directory.
    File(FileConfig),
}

impl BackendSpec {
    /// A file backend rooted at `dir` with default cache and the production
    /// filesystem.
    pub fn file(dir: impl Into<PathBuf>) -> Self {
        Self::File(FileConfig::new(dir))
    }

    /// Whether this spec opens file-backed stores.
    pub fn is_file(&self) -> bool {
        matches!(self, Self::File(_))
    }
}

/// Configuration of the file backend: where page files live, how large the
/// in-process page cache is, and which [`Fs`] to write through (the seam
/// the fault injector interposes on).
#[derive(Clone)]
pub struct FileConfig {
    dir: PathBuf,
    cache_pages: usize,
    fs: Arc<dyn Fs>,
    /// Shared sequence for unique per-store file names; cloned configs
    /// share it so sharded builds on worker threads never collide.
    seq: Arc<AtomicU64>,
}

impl std::fmt::Debug for FileConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileConfig")
            .field("dir", &self.dir)
            .field("cache_pages", &self.cache_pages)
            .finish_non_exhaustive()
    }
}

impl FileConfig {
    /// A config over the production filesystem ([`RealFs`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self::with_fs(dir, RealFs::shared())
    }

    /// A config writing through an explicit [`Fs`] (fault injection).
    pub fn with_fs(dir: impl Into<PathBuf>, fs: Arc<dyn Fs>) -> Self {
        Self {
            dir: dir.into(),
            cache_pages: DEFAULT_CACHE_PAGES,
            fs,
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Set the page-cache bound (0 disables caching: every charged read is
    /// cold).
    pub fn cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// The directory page files are created under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem this config writes through.
    pub fn fs(&self) -> &Arc<dyn Fs> {
        &self.fs
    }

    /// Reserve a fresh unique page-file path under the directory.
    fn next_path(&self) -> PathBuf {
        let n = self.seq.fetch_add(1, Ordering::Relaxed);
        self.dir.join(format!("store-{n:06}.pages"))
    }
}

/// Bounded LRU of decoded-length page images keyed by page id. Linear
/// scans are deliberate: the cache is `O(B)` entries, the same shape as
/// [`crate::PathPin`].
#[derive(Debug)]
struct PageCache {
    cap: usize,
    clock: u64,
    entries: Vec<(u32, u64, Vec<u8>)>,
}

impl PageCache {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            clock: 0,
            entries: Vec::with_capacity(cap.min(64)),
        }
    }

    fn get(&mut self, page: u32) -> Option<&[u8]> {
        self.clock += 1;
        let clock = self.clock;
        self.entries
            .iter_mut()
            .find(|(p, _, _)| *p == page)
            .map(|e| {
                e.1 = clock;
                e.2.as_slice()
            })
    }

    fn insert(&mut self, page: u32, bytes: Vec<u8>) {
        if self.cap == 0 {
            return;
        }
        self.clock += 1;
        if let Some(e) = self.entries.iter_mut().find(|(p, _, _)| *p == page) {
            e.1 = self.clock;
            e.2 = bytes;
            return;
        }
        if self.entries.len() >= self.cap {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used, _))| *used)
                .map(|(i, _)| i)
                .expect("cap > 0 ⇒ nonempty");
            self.entries.swap_remove(oldest);
        }
        self.entries.push((page, self.clock, bytes));
    }

    fn remove(&mut self, page: u32) {
        self.entries.retain(|(p, _, _)| *p != page);
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

struct MirrorInner {
    file: Box<dyn RawFile>,
    cache: PageCache,
    /// Charged reads served by a real file read (cache miss).
    cold: u64,
    /// Charged reads served by the in-process cache.
    warm: u64,
}

/// The file half of a file-backed store: a write-through mirror of the
/// model page table plus the physical read path. Held inside
/// [`crate::TypedStore`] / [`crate::Disk`]; all entry points take `&self`
/// (the inner state is a mutex) so charged reads stay `&self`.
pub(crate) struct FileMirror<T> {
    path: PathBuf,
    fs: Arc<dyn Fs>,
    record_size: usize,
    slot_bytes: u64,
    encode: fn(&[T], &mut Vec<u8>),
    decode: fn(&[u8]) -> Option<Vec<T>>,
    inner: Mutex<MirrorInner>,
}

impl<T> std::fmt::Debug for FileMirror<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileMirror")
            .field("path", &self.path)
            .field("slot_bytes", &self.slot_bytes)
            .finish_non_exhaustive()
    }
}

/// FNV-1a 64-bit — the sidecar's integrity check (torn metas must fail to
/// open, not decode to garbage).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

const META_MAGIC: &[u8; 8] = b"CCIXPGS1";

/// The model-side state `load` rebuilds: every live page's records, plus
/// the free list in pop order.
pub(crate) struct PersistImage<T> {
    pub pages: Vec<Option<Vec<T>>>,
    pub free: Vec<PageId>,
    pub capacity: usize,
}

impl<T: FixedBytes> FileMirror<T> {
    /// Create the mirror on a fresh file (unique name under the config's
    /// directory), sized for pages of `capacity` records.
    pub(crate) fn create(cfg: &FileConfig, capacity: usize) -> Self {
        let path = cfg.next_path();
        if let Err(e) = retry_interrupted(|| cfg.fs.create_dir_all(&cfg.dir)) {
            panic!("file backend: create dir {:?} failed: {e}", cfg.dir);
        }
        let file = match retry_interrupted(|| cfg.fs.open(&path, true)) {
            Ok(f) => f,
            Err(e) => panic!("file backend: create {path:?} failed: {e}"),
        };
        Self::from_parts(path, cfg, capacity, file)
    }

    fn from_parts(
        path: PathBuf,
        cfg: &FileConfig,
        capacity: usize,
        file: Box<dyn RawFile>,
    ) -> Self {
        let record_size = T::SIZE;
        let slot_bytes = (capacity * record_size).next_multiple_of(SLOT_ALIGN) as u64;
        Self {
            path,
            fs: Arc::clone(&cfg.fs),
            record_size,
            slot_bytes,
            encode: encode_records::<T>,
            decode: decode_records::<T>,
            inner: Mutex::new(MirrorInner {
                file,
                cache: PageCache::new(cfg.cache_pages),
                cold: 0,
                warm: 0,
            }),
        }
    }

    /// Reopen a persisted store: parse the sidecar meta, `pread` every
    /// live page and decode it. Returns the mirror plus the rebuilt model
    /// image. Panics on a missing, torn or inconsistent file pair — an
    /// unrecoverable store should fail loudly, recovery policy lives a
    /// layer up (the WAL/checkpoint machinery in `ccix-durable`).
    pub(crate) fn load(cfg: &FileConfig, path: &Path) -> (Self, PersistImage<T>) {
        let mut meta_path = path.to_path_buf().into_os_string();
        meta_path.push(".meta");
        let meta_path = PathBuf::from(meta_path);
        let meta_file = match cfg.fs.open(&meta_path, false) {
            Ok(f) => f,
            Err(e) => panic!("file backend: open {meta_path:?} failed: {e}"),
        };
        let len = meta_file.len().expect("meta len") as usize;
        let mut buf = vec![0u8; len];
        if let Err(e) = read_exact_at(meta_file.as_ref(), 0, &mut buf) {
            panic!("file backend: read {meta_path:?} failed: {e}");
        }
        let parsed = parse_meta(&buf)
            .unwrap_or_else(|why| panic!("file backend: {meta_path:?} invalid: {why}"));
        assert_eq!(
            parsed.record_size,
            T::SIZE as u32,
            "file backend: {meta_path:?} record size mismatch"
        );
        let file = match cfg.fs.open(path, false) {
            Ok(f) => f,
            Err(e) => panic!("file backend: open {path:?} failed: {e}"),
        };
        let mirror = Self::from_parts(path.to_path_buf(), cfg, parsed.capacity as usize, file);
        assert_eq!(
            mirror.slot_bytes, parsed.slot_bytes,
            "file backend: {meta_path:?} slot size mismatch"
        );
        let mut pages: Vec<Option<Vec<T>>> = (0..parsed.n_slots).map(|_| None).collect();
        {
            let inner = mirror.inner.lock().expect("file mirror");
            for &(id, rec_len) in &parsed.live {
                let mut bytes = vec![0u8; rec_len as usize * mirror.record_size];
                let off = u64::from(id) * mirror.slot_bytes;
                if let Err(e) = read_exact_at(inner.file.as_ref(), off, &mut bytes) {
                    panic!("file backend: load of page {id} from {path:?} failed: {e}");
                }
                let records = (mirror.decode)(&bytes).unwrap_or_else(|| {
                    panic!("file backend: page {id} of {path:?} failed to decode")
                });
                pages[id as usize] = Some(records);
            }
        }
        let image = PersistImage {
            pages,
            free: parsed.free.into_iter().map(PageId).collect(),
            capacity: parsed.capacity as usize,
        };
        (mirror, image)
    }
}

impl<T> FileMirror<T> {
    fn offset(&self, id: PageId) -> u64 {
        u64::from(id.0) * self.slot_bytes
    }

    fn meta_path(&self) -> PathBuf {
        let mut p = self.path.clone().into_os_string();
        p.push(".meta");
        PathBuf::from(p)
    }

    /// Write-through of one page mutation: encode and `pwrite` the record
    /// area of the page's slot, and install the image in the cache (a page
    /// just written is hot, like any real buffer pool).
    pub(crate) fn write_page(&self, id: PageId, records: &[T]) {
        let mut bytes = Vec::with_capacity(records.len() * self.record_size);
        (self.encode)(records, &mut bytes);
        let off = self.offset(id);
        let mut inner = self.inner.lock().expect("file mirror");
        if let Err(e) = write_all_at(inner.file.as_mut(), off, &bytes) {
            panic!(
                "file backend: write of page {id:?} to {:?} failed: {e}",
                self.path
            );
        }
        inner.cache.insert(id.0, bytes);
    }

    /// The physical read path of one *charged* read: a cache hit is warm
    /// (no syscall), a miss `pread`s the slot (cold). `records` is the
    /// authoritative model page — it supplies the live record count and,
    /// in debug builds, the bytes the file must agree with.
    pub(crate) fn read_page(&self, id: PageId, records: &[T]) {
        let byte_len = records.len() * self.record_size;
        let off = self.offset(id);
        let mut inner = self.inner.lock().expect("file mirror");
        if let Some(_cached) = inner.cache.get(id.0) {
            #[cfg(debug_assertions)]
            {
                let mut expect = Vec::with_capacity(byte_len);
                (self.encode)(records, &mut expect);
                assert_eq!(
                    _cached, expect,
                    "file backend cache divergence on page {id:?} of {:?}",
                    self.path
                );
            }
            inner.warm += 1;
            return;
        }
        let mut bytes = vec![0u8; byte_len];
        if let Err(e) = read_exact_at(inner.file.as_ref(), off, &mut bytes) {
            panic!(
                "file backend: read of page {id:?} from {:?} failed: {e}",
                self.path
            );
        }
        #[cfg(debug_assertions)]
        {
            let mut expect = Vec::with_capacity(byte_len);
            (self.encode)(records, &mut expect);
            assert_eq!(
                bytes, expect,
                "file backend divergence on page {id:?} of {:?}",
                self.path
            );
        }
        inner.cold += 1;
        inner.cache.insert(id.0, bytes);
    }

    /// Drop the cached image of a freed page; the slot itself is recycled
    /// by the next allocation that pops it off the free list.
    pub(crate) fn free_page(&self, id: PageId) {
        self.inner.lock().expect("file mirror").cache.remove(id.0);
    }

    /// `(cold, warm)` charged-read counts so far.
    pub(crate) fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("file mirror");
        (inner.cold, inner.warm)
    }

    /// Empty the page cache, so the next charged reads are all cold.
    pub(crate) fn clear_cache(&self) {
        self.inner.lock().expect("file mirror").cache.clear();
    }

    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Raw record-area bytes of a slot, read straight from the file with
    /// the cache bypassed and nothing charged — the differential suite's
    /// view of the on-disk page image.
    pub(crate) fn slot_bytes_raw(&self, id: PageId, records_len: usize) -> Vec<u8> {
        let mut bytes = vec![0u8; records_len * self.record_size];
        let off = self.offset(id);
        let inner = self.inner.lock().expect("file mirror");
        if let Err(e) = read_exact_at(inner.file.as_ref(), off, &mut bytes) {
            panic!(
                "file backend: raw read of page {id:?} from {:?} failed: {e}",
                self.path
            );
        }
        bytes
    }

    /// Make the store durable: fsync the page file, then publish the
    /// sidecar meta (capacity, per-page record counts, free list)
    /// atomically via temp-file + rename + directory sync. After this,
    /// `load` can rebuild the store from the file pair alone. `n_slots`
    /// counts every slot ever allocated (live + free).
    pub(crate) fn persist(
        &self,
        capacity: usize,
        n_slots: usize,
        live: &[(u32, u32)],
        free: &[PageId],
    ) {
        {
            let mut inner = self.inner.lock().expect("file mirror");
            if let Err(e) = retry_interrupted(|| inner.file.sync()) {
                panic!("file backend: sync of {:?} failed: {e}", self.path);
            }
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(META_MAGIC);
        buf.extend_from_slice(&(capacity as u32).to_le_bytes());
        buf.extend_from_slice(&(self.record_size as u32).to_le_bytes());
        buf.extend_from_slice(&self.slot_bytes.to_le_bytes());
        buf.extend_from_slice(&(n_slots as u32).to_le_bytes());
        buf.extend_from_slice(&(live.len() as u32).to_le_bytes());
        for (id, len) in live {
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&len.to_le_bytes());
        }
        buf.extend_from_slice(&(free.len() as u32).to_le_bytes());
        for id in free {
            buf.extend_from_slice(&id.0.to_le_bytes());
        }
        let sum = fnv64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());

        let meta = self.meta_path();
        let mut tmp = meta.clone().into_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let result = (|| -> std::io::Result<()> {
            // Every step retries `Interrupted`: the fault layer may inject
            // EINTR on any mutating op, not just writes.
            let mut f = retry_interrupted(|| self.fs.open(&tmp, true))?;
            retry_interrupted(|| f.set_len(0))?;
            write_all_at(f.as_mut(), 0, &buf)?;
            retry_interrupted(|| f.sync())?;
            retry_interrupted(|| self.fs.rename(&tmp, &meta))?;
            let dir = meta.parent().unwrap_or(Path::new("."));
            retry_interrupted(|| self.fs.sync_dir(dir))
        })();
        if let Err(e) = result {
            panic!("file backend: persist of {meta:?} failed: {e}");
        }
    }
}

struct ParsedMeta {
    capacity: u32,
    record_size: u32,
    slot_bytes: u64,
    n_slots: u32,
    live: Vec<(u32, u32)>,
    free: Vec<u32>,
}

struct Cursor<'a> {
    body: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take4(&mut self) -> Result<u32, String> {
        let v = self
            .body
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated".to_string())?;
        self.pos += 4;
        Ok(u32::from_le_bytes(v.try_into().expect("4 bytes")))
    }

    fn take8(&mut self) -> Result<u64, String> {
        let v = self
            .body
            .get(self.pos..self.pos + 8)
            .ok_or_else(|| "truncated".to_string())?;
        self.pos += 8;
        Ok(u64::from_le_bytes(v.try_into().expect("8 bytes")))
    }
}

fn parse_meta(buf: &[u8]) -> Result<ParsedMeta, String> {
    if buf.len() < META_MAGIC.len() + 8 {
        return Err("too short".into());
    }
    let (body, sum_bytes) = buf.split_at(buf.len() - 8);
    let sum = u64::from_le_bytes(sum_bytes.try_into().expect("8 bytes"));
    if fnv64(body) != sum {
        return Err("checksum mismatch".into());
    }
    if &body[..8] != META_MAGIC {
        return Err("bad magic".into());
    }
    let mut cur = Cursor { body, pos: 8 };
    let capacity = cur.take4()?;
    let record_size = cur.take4()?;
    let slot_bytes = cur.take8()?;
    let n_slots = cur.take4()?;
    let n_live = cur.take4()?;
    let mut live = Vec::with_capacity(n_live as usize);
    for _ in 0..n_live {
        let id = cur.take4()?;
        let len = cur.take4()?;
        if id >= n_slots || u64::from(len) * u64::from(record_size) > slot_bytes {
            return Err(format!("live page {id} out of bounds"));
        }
        live.push((id, len));
    }
    let n_free = cur.take4()?;
    let mut free = Vec::with_capacity(n_free as usize);
    for _ in 0..n_free {
        let id = cur.take4()?;
        if id >= n_slots {
            return Err(format!("free page {id} out of bounds"));
        }
        free.push(id);
    }
    if cur.pos != body.len() {
        return Err("trailing bytes".into());
    }
    if live.len() + free.len() != n_slots as usize {
        return Err("live + free ≠ slots".into());
    }
    Ok(ParsedMeta {
        capacity,
        record_size,
        slot_bytes,
        n_slots,
        live,
        free,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_lru_semantics() {
        let mut c = PageCache::new(2);
        c.insert(1, vec![1]);
        c.insert(2, vec![2]);
        assert!(c.get(1).is_some()); // refresh 1
        c.insert(3, vec![3]); // evicts 2
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        assert!(c.get(3).is_some());
        c.remove(1);
        assert!(c.get(1).is_none());
        c.clear();
        assert!(c.get(3).is_none());
    }

    #[test]
    fn zero_cap_cache_never_holds() {
        let mut c = PageCache::new(0);
        c.insert(1, vec![1]);
        assert!(c.get(1).is_none());
    }

    #[test]
    fn meta_roundtrip_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("ccix-backend-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let cfg = FileConfig::new(&dir);
        let mirror: FileMirror<u64> = FileMirror::create(&cfg, 4);
        mirror.write_page(PageId(0), &[1, 2]);
        mirror.write_page(PageId(2), &[3]);
        mirror.persist(4, 3, &[(0, 2), (2, 1)], &[PageId(1)]);
        let meta = std::fs::read(mirror.meta_path()).expect("meta");
        assert!(parse_meta(&meta).is_ok());
        let mut torn = meta.clone();
        torn.pop();
        assert!(parse_meta(&torn).is_err(), "torn tail fails the checksum");
        let mut flipped = meta.clone();
        flipped[10] ^= 0xFF;
        assert!(parse_meta(&flipped).is_err(), "bit flip fails the checksum");

        let (_m2, loaded) = FileMirror::<u64>::load(&cfg, mirror.path());
        assert_eq!(loaded.capacity, 4);
        assert_eq!(
            loaded.pages,
            vec![Some(vec![1u64, 2]), None, Some(vec![3u64])]
        );
        assert_eq!(loaded.free, vec![PageId(1)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
