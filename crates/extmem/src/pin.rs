//! Per-operation page pinning.
//!
//! The paper's bounds price each *distinct* block once per operation: a
//! multi-step search that touches the same control or data page twice holds
//! it in working memory (the model grants `Θ(B²)` units, i.e. `Θ(B)` pages)
//! and pays one transfer, not two. [`PathPin`] makes that accounting
//! concrete — and honest: it is a bounded LRU over page keys, so an
//! operation whose working set outgrows the pin's frame budget pays again
//! for pages it had to evict, exactly like a real buffer.
//!
//! A pin is created per logical operation (one query, one insert, or one
//! *batch* of queries — batching is precisely the choice to treat many
//! queries as one operation and share the descent's pages across them).
//! Page keys live in caller-chosen *spaces* so one pin can cover several
//! stores (a tree's control blocks, its point store, per-node PST stores)
//! without id collisions.

use crate::stats::IoCounter;
use crate::store::{PageId, TypedStore};

/// A bounded LRU read-pin for one logical operation.
///
/// [`PathPin::touch`] charges one read to the shared counter the first time
/// a key is seen (or after it has been evicted) and nothing while the page
/// stays resident. Writes are not pinned: dirty-block accounting is the
/// tree's job (see the trees' `flush_dirty`).
#[derive(Debug)]
pub struct PathPin {
    counter: IoCounter,
    cap: usize,
    clock: u64,
    /// `(key, last-touch stamp)`; linear scans are fine at `O(B)` frames.
    frames: Vec<(u64, u64)>,
    charged: u64,
}

impl PathPin {
    /// Create a pin charging `counter`, holding up to `cap_frames` pages.
    ///
    /// The trees use `B` frames — `B` pages of `B` records is exactly the
    /// `Θ(B²)`-unit working memory the paper's model grants an operation.
    ///
    /// # Panics
    /// Panics if `cap_frames == 0`.
    pub fn new(counter: IoCounter, cap_frames: usize) -> Self {
        assert!(cap_frames > 0, "a pin needs at least one frame");
        Self {
            counter,
            cap: cap_frames,
            clock: 0,
            frames: Vec::with_capacity(cap_frames.min(64)),
            charged: 0,
        }
    }

    /// Note a touch of page `page` in key-space `space`. Charges one read on
    /// a miss (first touch, or re-touch after eviction) and returns `true`;
    /// a resident page refreshes its recency and costs nothing.
    pub fn touch(&mut self, space: u32, page: u64) -> bool {
        debug_assert!(page < 1 << 32, "page id out of key range");
        let key = (u64::from(space) << 32) | page;
        self.clock += 1;
        if let Some(f) = self.frames.iter_mut().find(|(k, _)| *k == key) {
            f.1 = self.clock;
            return false;
        }
        if self.frames.len() >= self.cap {
            let oldest = self
                .frames
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("cap > 0 ⇒ nonempty");
            self.frames.swap_remove(oldest);
        }
        self.frames.push((key, self.clock));
        self.counter.add_reads(1);
        self.charged += 1;
        true
    }

    /// Reads charged through this pin so far.
    pub fn charged(&self) -> u64 {
        self.charged
    }

    /// Frame budget.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl<T: Clone> TypedStore<T> {
    /// Read a page within a pinned operation: one read I/O on the first
    /// touch of `(space, id)`, free while the page stays resident in `pin`.
    ///
    /// `space` distinguishes this store from others sharing the pin; the
    /// caller must use one space per store and construct the pin over the
    /// same counter as the store, or reads leak past the cost model.
    ///
    /// On a file-backed store the physical read path runs exactly when the
    /// pin charges: a miss (first touch, or re-touch after eviction) goes
    /// through the backend's cache-or-`pread` path, while a resident
    /// re-touch stays free on both backends — pin residency *is* the
    /// model's working memory, and the file backend honours it.
    pub fn read_pinned(&self, pin: &mut PathPin, space: u32, id: PageId) -> &[T] {
        let miss = pin.touch(space, u64::from(id.0));
        let page = self.read_unbilled_internal(id);
        if miss {
            if let Some(m) = self.file_mirror() {
                m.read_page(id, page);
            }
        }
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_charges_repeat_is_free() {
        let c = IoCounter::new();
        let mut pin = PathPin::new(c.clone(), 4);
        assert!(pin.touch(0, 7));
        assert!(!pin.touch(0, 7));
        assert!(pin.touch(1, 7), "spaces are distinct");
        assert_eq!(c.reads(), 2);
        assert_eq!(pin.charged(), 2);
    }

    #[test]
    fn eviction_recharges() {
        let c = IoCounter::new();
        let mut pin = PathPin::new(c.clone(), 2);
        pin.touch(0, 1);
        pin.touch(0, 2);
        pin.touch(0, 1); // refresh 1
        pin.touch(0, 3); // evicts 2
        assert!(!pin.touch(0, 1), "1 stayed resident");
        assert!(pin.touch(0, 2), "2 was evicted and must be re-read");
        assert_eq!(c.reads(), 4);
    }

    #[test]
    fn pinned_store_reads_bill_once() {
        let c = IoCounter::new();
        let mut s: TypedStore<u32> = TypedStore::new(4, c.clone());
        let id = s.alloc(vec![1, 2, 3]);
        let mut pin = PathPin::new(c.clone(), 4);
        let before = c.reads();
        assert_eq!(s.read_pinned(&mut pin, 0, id), &[1, 2, 3]);
        assert_eq!(s.read_pinned(&mut pin, 0, id), &[1, 2, 3]);
        assert_eq!(c.reads() - before, 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let _ = PathPin::new(IoCounter::new(), 0);
    }
}
