//! Sortedness-preserving merge primitives over point runs.
//!
//! The metablock trees' reorganisations (§3.2, Fig. 19) work over data that
//! is *already sorted*: the vertical blockings are x-sorted, the horizontal
//! blockings and `TS` snapshots are y-sorted, and only the small
//! update-buffer deltas arrive unordered. Re-sorting a whole metablock on
//! every level-I/TS/level-II reorganisation therefore pays `O(n log n)`
//! where an `O(n)` merge (or an `O(delta · log n)` galloping merge)
//! suffices. This module provides those primitives, plus the [`SortedRun`]
//! newtype that makes x-sortedness a *typed* invariant: APIs that require
//! sorted input take a `SortedRun`, so the compiler — not a comment —
//! enforces who sorts.
//!
//! All orders are strict total orders (`(coordinate, id)` with unique ids),
//! so a merge produces exactly the sequence a full sort would: the two
//! pipelines are interchangeable bit-for-bit, which is what lets the
//! differential suites compare them directly.
//!
//! Deletions ride the same machinery as **negative merges**: a tombstone is
//! an exact copy of the point it deletes, so [`SortedRun::cancel`] (and the
//! y-descending [`merge_delta_y_desc_cancel`]) annihilate insert/delete
//! pairs at the first reorganisation that sees both, in the same galloping
//! pass that would have merged them.

use crate::point::{sort_by_x, sort_by_y_desc, Point};

/// A run of points in strictly ascending `(x, id)` order — the order of the
/// vertical blockings and of every build arena.
///
/// The only constructors either sort ([`SortedRun::from_unsorted`]) or
/// debug-assert an already-sorted vector ([`SortedRun::from_sorted`]), so a
/// `SortedRun` in hand is proof of sortedness: consumers (metablock
/// organisation builders, slab planners, PST builders) need no runtime
/// re-check and no defensive re-sort.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SortedRun(Vec<Point>);

impl SortedRun {
    /// An empty run.
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Sort `points` by `(x, id)` and wrap them.
    pub fn from_unsorted(mut points: Vec<Point>) -> Self {
        sort_by_x(&mut points);
        Self(points)
    }

    /// Wrap a vector the caller promises is strictly `(x, id)`-ascending
    /// (checked in debug builds).
    pub fn from_sorted(points: Vec<Point>) -> Self {
        debug_assert!(
            points.windows(2).all(|w| w[0].xkey() < w[1].xkey()),
            "SortedRun::from_sorted received an unsorted vector"
        );
        Self(points)
    }

    /// The points, in order.
    pub fn as_slice(&self) -> &[Point] {
        &self.0
    }

    /// Unwrap into the underlying vector (still sorted, obviously).
    pub fn into_inner(self) -> Vec<Point> {
        self.0
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the run holds no points.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Merge two runs into one, galloping through stretches of either input
    /// that fall entirely below the other's head. Disjoint or barely
    /// interleaved runs (adjacent slabs, a small delta against a large main
    /// run) cost `O(runs · log n)` comparisons plus the unavoidable copies;
    /// the worst case is the ordinary `O(n)` two-way merge.
    pub fn merge(self, other: SortedRun) -> SortedRun {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        let (a, b) = (self.0, other.0);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            if a[i].xkey() < b[j].xkey() {
                let k = i + gallop_x(&a[i..], b[j].xkey());
                out.extend_from_slice(&a[i..k]);
                i = k;
            } else {
                let k = j + gallop_x(&b[j..], a[i].xkey());
                out.extend_from_slice(&b[j..k]);
                j = k;
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        SortedRun(out)
    }

    /// K-way merge by pairwise rounds: `O(n log k)` with plain two-way
    /// merges (and the gallop fast path makes concatenable runs — e.g. the
    /// x-disjoint vertical runs of a subtree collected in slab order —
    /// nearly free). Used by branching splits to rebuild a subtree without
    /// re-sorting its `O(n)` points from scratch.
    pub fn merge_many(mut runs: Vec<SortedRun>) -> SortedRun {
        runs.retain(|r| !r.is_empty());
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(a.merge(b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        runs.pop().unwrap_or_default()
    }

    /// Split the run at `index` (both halves stay sorted by construction).
    ///
    /// # Panics
    /// Panics if `index > len`.
    pub fn split_at(self, index: usize) -> (SortedRun, SortedRun) {
        let mut left = self.0;
        let right = left.split_off(index);
        (SortedRun(left), SortedRun(right))
    }

    /// Index of the first point with `xkey ≥ key` — the slab partition
    /// point — found by galloping (exponential probe + binary search), so
    /// redistributing an existing x-sorted run across slab boundaries costs
    /// `O(log n)` per boundary instead of a re-sort of the concatenation.
    pub fn partition_point(&self, key: (i64, u64)) -> usize {
        gallop_x(&self.0, key)
    }

    /// Cancel tombstones against the run: every point whose `(x, id)` key
    /// matches a tombstone in `tombs` is annihilated, and the tombstones
    /// that found no match are returned (still in `(x, id)` order) so the
    /// caller can keep them pending or assert there are none. Galloping
    /// over the stretches between tombstones makes a sparse cancellation
    /// (the common case: a handful of deletes against a `B²`-point
    /// metablock) cost `O(tombs · log n)` comparisons plus the copies.
    ///
    /// With unique ids a tombstone is an exact copy of the point it
    /// deletes, so matching on the `(x, id)` key is matching on identity
    /// (the `(y, id)` agreement is debug-checked).
    pub fn cancel(self, tombs: &SortedRun) -> (SortedRun, Vec<Point>) {
        if tombs.is_empty() {
            return (self, Vec::new());
        }
        let a = self.0;
        let mut out = Vec::with_capacity(a.len());
        let mut unmatched = Vec::new();
        let mut i = 0usize;
        for t in tombs.as_slice() {
            let k = i + gallop_x(&a[i..], t.xkey());
            out.extend_from_slice(&a[i..k]);
            i = k;
            if i < a.len() && a[i].xkey() == t.xkey() {
                debug_assert_eq!(
                    a[i], *t,
                    "tombstone coordinates disagree with the live copy"
                );
                i += 1; // annihilate the pair
            } else {
                unmatched.push(*t);
            }
        }
        out.extend_from_slice(&a[i..]);
        (SortedRun(out), unmatched)
    }
}

impl std::ops::Deref for SortedRun {
    type Target = [Point];

    fn deref(&self) -> &[Point] {
        &self.0
    }
}

/// A **resumable** two-way merge of `(x, id)`-sorted runs: the incremental
/// counterpart of [`SortedRun::merge`], producing bit-identical output in
/// bounded instalments.
///
/// An incremental reorganisation (`Tuning::reorg_pages_per_op`) cannot
/// afford one `O(n)` merge inside a single insert or delete, so it parks
/// the merge state here and advances it a few pages' worth of points per
/// operation with [`MergeCursor::step`]. Because the inputs are strict
/// total orders, every prefix the cursor emits is exactly the prefix the
/// one-shot merge would have produced — dribbling changes *when* the work
/// happens, never *what* it produces.
#[derive(Clone, Debug)]
pub struct MergeCursor {
    a: Vec<Point>,
    b: Vec<Point>,
    i: usize,
    j: usize,
    out: Vec<Point>,
}

impl MergeCursor {
    /// Park a merge of `a` and `b`, emitting nothing yet.
    pub fn new(a: SortedRun, b: SortedRun) -> Self {
        let (a, b) = (a.into_inner(), b.into_inner());
        let cap = a.len() + b.len();
        Self {
            a,
            b,
            i: 0,
            j: 0,
            out: Vec::with_capacity(cap),
        }
    }

    /// Advance the merge by at most `max_points` output points (galloping
    /// through uncontested stretches like the one-shot merge, clipped to
    /// the budget). Returns `true` when the merge is complete.
    pub fn step(&mut self, max_points: usize) -> bool {
        let target = self
            .out
            .len()
            .saturating_add(max_points)
            .min(self.a.len() + self.b.len());
        while self.out.len() < target {
            let room = target - self.out.len();
            match (self.a.get(self.i), self.b.get(self.j)) {
                (Some(x), Some(y)) => {
                    if x.xkey() < y.xkey() {
                        let k = self.i + gallop_x(&self.a[self.i..], y.xkey()).min(room);
                        self.out.extend_from_slice(&self.a[self.i..k]);
                        self.i = k;
                    } else {
                        let k = self.j + gallop_x(&self.b[self.j..], x.xkey()).min(room);
                        self.out.extend_from_slice(&self.b[self.j..k]);
                        self.j = k;
                    }
                }
                (Some(_), None) => {
                    let k = (self.i + room).min(self.a.len());
                    self.out.extend_from_slice(&self.a[self.i..k]);
                    self.i = k;
                }
                (None, Some(_)) => {
                    let k = (self.j + room).min(self.b.len());
                    self.out.extend_from_slice(&self.b[self.j..k]);
                    self.j = k;
                }
                (None, None) => break,
            }
        }
        self.is_done()
    }

    /// True when every input point has been emitted.
    pub fn is_done(&self) -> bool {
        self.i == self.a.len() && self.j == self.b.len()
    }

    /// Input points not yet emitted.
    pub fn remaining(&self) -> usize {
        (self.a.len() - self.i) + (self.b.len() - self.j)
    }

    /// Run the merge to completion and unwrap the result (identical to
    /// what [`SortedRun::merge`] over the original inputs returns).
    pub fn finish(mut self) -> SortedRun {
        self.step(usize::MAX);
        SortedRun(self.out)
    }
}

/// First index of `slice` whose `xkey` is `≥ key`, by exponential probing
/// then binary search over the final octave. `O(log distance)`.
fn gallop_x(slice: &[Point], key: (i64, u64)) -> usize {
    if slice.first().is_none_or(|p| p.xkey() >= key) {
        return 0;
    }
    // Invariant: slice[lo - 1].xkey() < key.
    let mut lo = 1usize;
    let mut step = 1usize;
    while lo < slice.len() && slice[lo].xkey() < key {
        lo += step;
        step *= 2;
    }
    let hi = lo.min(slice.len());
    let base = lo - step / 2;
    base + slice[base..hi].partition_point(|p| p.xkey() < key)
}

/// Merge two y-descending vectors (the order of horizontal blockings and
/// `TS` snapshots) into one, galloping like [`SortedRun::merge`]. Strict
/// total order on `(y, id)` makes the result identical to re-sorting the
/// concatenation.
pub fn merge_y_desc(a: Vec<Point>, b: Vec<Point>) -> Vec<Point> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    debug_assert!(a.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
    debug_assert!(b.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        if a[i].ykey() > b[j].ykey() {
            let k = i + gallop_y_desc(&a[i..], b[j].ykey());
            out.extend_from_slice(&a[i..k]);
            i = k;
        } else {
            let k = j + gallop_y_desc(&b[j..], a[i].ykey());
            out.extend_from_slice(&b[j..k]);
            j = k;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// First index of y-descending `slice` whose `ykey` is `≤ key`.
fn gallop_y_desc(slice: &[Point], key: (i64, u64)) -> usize {
    if slice.first().is_none_or(|p| p.ykey() <= key) {
        return 0;
    }
    let mut lo = 1usize;
    let mut step = 1usize;
    while lo < slice.len() && slice[lo].ykey() > key {
        lo += step;
        step *= 2;
    }
    let hi = lo.min(slice.len());
    let base = lo - step / 2;
    base + slice[base..hi].partition_point(|p| p.ykey() > key)
}

/// Merge two y-descending vectors, keeping at most `cap` points — the
/// bounded merge behind the capped `TS`/`TSL`/`TSR` sibling snapshots
/// (whose `truncated` bit the caller derives from `total > kept`).
pub fn merge_y_desc_capped(a: Vec<Point>, b: Vec<Point>, cap: usize) -> Vec<Point> {
    if b.is_empty() && a.len() <= cap {
        return a;
    }
    if a.is_empty() && b.len() <= cap {
        return b;
    }
    debug_assert!(a.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
    debug_assert!(b.windows(2).all(|w| w[0].ykey() > w[1].ykey()));
    let mut out = Vec::with_capacity((a.len() + b.len()).min(cap));
    let (mut i, mut j) = (0usize, 0usize);
    while out.len() < cap {
        match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => {
                if x.ykey() > y.ykey() {
                    out.push(*x);
                    i += 1;
                } else {
                    out.push(*y);
                    j += 1;
                }
            }
            (Some(x), None) => {
                out.push(*x);
                i += 1;
            }
            (None, Some(y)) => {
                out.push(*y);
                j += 1;
            }
            (None, None) => break,
        }
    }
    out
}

/// Sort a small delta by y descending and merge it into an already
/// y-descending run — the `TS`-reorganisation step (y-sorted snapshot +
/// sorted delta, no full re-sort).
pub fn merge_delta_y_desc(run: Vec<Point>, mut delta: Vec<Point>) -> Vec<Point> {
    sort_by_y_desc(&mut delta);
    merge_y_desc(run, delta)
}

/// [`merge_delta_y_desc`] with tombstone cancellation: points whose id
/// appears among `tombs` are dropped from the merged result — the
/// TS-reorganisation step when the merged child carries pending deletes,
/// so a freshly rebuilt sibling snapshot never resurrects a deleted point.
/// With no tombstones this is exactly `merge_delta_y_desc` (same code
/// path, same result), so insert-only reorganisations are unaffected.
pub fn merge_delta_y_desc_cancel(
    run: Vec<Point>,
    delta: Vec<Point>,
    tombs: &[Point],
) -> Vec<Point> {
    if tombs.is_empty() {
        return merge_delta_y_desc(run, delta);
    }
    let dead: std::collections::HashSet<u64> = tombs.iter().map(|t| t.id).collect();
    let mut out = merge_delta_y_desc(run, delta);
    out.retain(|p| !dead.contains(&p.id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::sort_by_x;

    fn pts(pairs: &[(i64, i64)]) -> Vec<Point> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Point::new(x, y, i as u64))
            .collect()
    }

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        let mut s = seed | 1;
        (0..n)
            .map(|i| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                Point::new((s % 1000) as i64, ((s >> 32) % 1000) as i64, i as u64)
            })
            .collect()
    }

    #[test]
    fn merge_equals_sort() {
        for &(na, nb) in &[(0usize, 5usize), (5, 0), (7, 9), (100, 3), (64, 64)] {
            let a = pseudo_points(na, 0xA);
            let b: Vec<Point> = pseudo_points(nb, 0xB)
                .into_iter()
                .map(|p| Point::new(p.x, p.y, p.id + 10_000))
                .collect();
            let merged = SortedRun::from_unsorted(a.clone())
                .merge(SortedRun::from_unsorted(b.clone()))
                .into_inner();
            let mut want: Vec<Point> = a.into_iter().chain(b).collect();
            sort_by_x(&mut want);
            assert_eq!(merged, want, "na={na} nb={nb}");
        }
    }

    #[test]
    fn merge_many_equals_sort() {
        let mut all = Vec::new();
        let mut runs = Vec::new();
        for r in 0..7u64 {
            let run: Vec<Point> = pseudo_points(30 + r as usize * 11, r + 1)
                .into_iter()
                .map(|p| Point::new(p.x, p.y, p.id + r * 100_000))
                .collect();
            all.extend(run.iter().copied());
            runs.push(SortedRun::from_unsorted(run));
        }
        let merged = SortedRun::merge_many(runs).into_inner();
        sort_by_x(&mut all);
        assert_eq!(merged, all);
        assert!(SortedRun::merge_many(Vec::new()).is_empty());
    }

    #[test]
    fn gallop_partition_matches_linear_scan() {
        let run = SortedRun::from_unsorted(pseudo_points(257, 0x9E));
        for probe in [-1i64, 0, 1, 250, 500, 999, 1000, 2000] {
            for id in [0u64, 77, u64::MAX] {
                let got = run.partition_point((probe, id));
                let want = run.iter().take_while(|p| p.xkey() < (probe, id)).count();
                assert_eq!(got, want, "probe=({probe},{id})");
            }
        }
    }

    #[test]
    fn y_desc_merge_equals_sort() {
        let a = {
            let mut v = pts(&[(0, 9), (1, 7), (2, 3)]);
            sort_by_y_desc(&mut v);
            v
        };
        let b: Vec<Point> = {
            let mut v: Vec<Point> = pts(&[(5, 8), (6, 2), (7, 7)])
                .into_iter()
                .map(|p| Point::new(p.x, p.y, p.id + 50))
                .collect();
            sort_by_y_desc(&mut v);
            v
        };
        let merged = merge_y_desc(a.clone(), b.clone());
        let mut want: Vec<Point> = a.into_iter().chain(b).collect();
        sort_by_y_desc(&mut want);
        assert_eq!(merged, want);
    }

    #[test]
    fn capped_merge_caps_and_orders() {
        let a: Vec<Point> = [9i64, 7, 3]
            .iter()
            .enumerate()
            .map(|(i, &y)| Point::new(0, y, i as u64))
            .collect();
        let b: Vec<Point> = [8i64, 2]
            .iter()
            .enumerate()
            .map(|(i, &y)| Point::new(0, y, 10 + i as u64))
            .collect();
        let m = merge_y_desc_capped(a, b, 4);
        let ys: Vec<i64> = m.iter().map(|p| p.y).collect();
        assert_eq!(ys, vec![9, 8, 7, 3]);
    }

    #[test]
    fn delta_merge_sorts_only_the_delta() {
        let mut run = pseudo_points(200, 3);
        sort_by_y_desc(&mut run);
        let delta: Vec<Point> = pseudo_points(17, 5)
            .into_iter()
            .map(|p| Point::new(p.x, p.y, p.id + 1_000))
            .collect();
        let merged = merge_delta_y_desc(run.clone(), delta.clone());
        let mut want: Vec<Point> = run.into_iter().chain(delta).collect();
        sort_by_y_desc(&mut want);
        assert_eq!(merged, want);
    }

    #[test]
    fn cancel_annihilates_matches_and_returns_strays() {
        let run = SortedRun::from_unsorted(pseudo_points(120, 0xC));
        let all = run.to_vec();
        // Tombstones: every third stored point, plus two strays that match
        // nothing (fresh ids).
        let mut tomb_pts: Vec<Point> = all.iter().step_by(3).copied().collect();
        tomb_pts.push(Point::new(-5, -5, 900_001));
        tomb_pts.push(Point::new(5000, 5000, 900_002));
        let tombs = SortedRun::from_unsorted(tomb_pts.clone());
        let (kept, unmatched) = run.cancel(&tombs);
        let dead: Vec<u64> = all.iter().step_by(3).map(|p| p.id).collect();
        let want: Vec<Point> = all
            .iter()
            .filter(|p| !dead.contains(&p.id))
            .copied()
            .collect();
        assert_eq!(kept.to_vec(), want);
        let mut stray_ids: Vec<u64> = unmatched.iter().map(|p| p.id).collect();
        stray_ids.sort_unstable();
        assert_eq!(stray_ids, vec![900_001, 900_002]);
        // Empty tombstone set is the identity.
        let run2 = SortedRun::from_unsorted(pseudo_points(9, 1));
        let before = run2.to_vec();
        let (same, none) = run2.cancel(&SortedRun::new());
        assert_eq!(same.to_vec(), before);
        assert!(none.is_empty());
    }

    #[test]
    fn delta_merge_cancel_filters_by_id() {
        let mut run = pseudo_points(60, 0xD);
        sort_by_y_desc(&mut run);
        let delta: Vec<Point> = pseudo_points(11, 0xE)
            .into_iter()
            .map(|p| Point::new(p.x, p.y, p.id + 2_000))
            .collect();
        let tombs: Vec<Point> = run.iter().step_by(5).copied().collect();
        let merged = merge_delta_y_desc_cancel(run.clone(), delta.clone(), &tombs);
        let dead: Vec<u64> = tombs.iter().map(|p| p.id).collect();
        let mut want: Vec<Point> = run
            .into_iter()
            .chain(delta)
            .filter(|p| !dead.contains(&p.id))
            .collect();
        sort_by_y_desc(&mut want);
        assert_eq!(merged, want);
    }

    #[test]
    fn cursor_dribble_equals_one_shot_merge() {
        for &(na, nb) in &[
            (0usize, 5usize),
            (5, 0),
            (7, 9),
            (100, 3),
            (64, 64),
            (257, 129),
        ] {
            let a = pseudo_points(na, 0x1A);
            let b: Vec<Point> = pseudo_points(nb, 0x1B)
                .into_iter()
                .map(|p| Point::new(p.x, p.y, p.id + 10_000))
                .collect();
            let ra = SortedRun::from_unsorted(a);
            let rb = SortedRun::from_unsorted(b);
            let want = ra.clone().merge(rb.clone()).into_inner();
            for &chunk in &[1usize, 3, 16, 1000] {
                let mut cur = MergeCursor::new(ra.clone(), rb.clone());
                let mut steps = 0usize;
                while !cur.step(chunk) {
                    steps += 1;
                    assert!(steps <= want.len() + 2, "cursor failed to make progress");
                }
                assert!(cur.is_done());
                assert_eq!(cur.remaining(), 0);
                let got = cur.finish().into_inner();
                assert_eq!(got, want, "na={na} nb={nb} chunk={chunk}");
            }
        }
    }

    #[test]
    fn cursor_step_budget_is_respected() {
        let ra = SortedRun::from_unsorted(pseudo_points(200, 0x2A));
        let rb = SortedRun::from_unsorted(
            pseudo_points(200, 0x2B)
                .into_iter()
                .map(|p| Point::new(p.x, p.y, p.id + 10_000))
                .collect(),
        );
        let total = ra.len() + rb.len();
        let mut cur = MergeCursor::new(ra, rb);
        cur.step(7);
        assert_eq!(
            cur.remaining(),
            total - 7,
            "a step emits exactly its budget"
        );
        cur.step(50);
        assert_eq!(cur.remaining(), total - 57);
    }

    #[test]
    fn split_preserves_sortedness_and_content() {
        let run = SortedRun::from_unsorted(pseudo_points(101, 0xF));
        let all: Vec<Point> = run.to_vec();
        let (l, r) = run.split_at(40);
        assert_eq!(l.len(), 40);
        assert_eq!(r.len(), 61);
        let rejoined: Vec<Point> = l.iter().chain(r.iter()).copied().collect();
        assert_eq!(rejoined, all);
    }
}
