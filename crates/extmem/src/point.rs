//! The planar record type shared by the two-dimensional structures.
//!
//! The paper's reductions (§2) turn every indexing problem into queries over
//! points `(x, y)`: an interval `[x1, x2]` becomes the point `(x1, x2)` above
//! the diagonal, an object in a labelled class becomes `(attribute, label)`.
//! A [`Point`] carries the application's record id as payload.

/// A point in the plane with an application-level id.
///
/// Ids must be unique within one structure; the structures use `(coordinate,
/// id)` lexicographic orders so all selections and partitions are strict
/// total orders even with duplicate coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Point {
    /// x coordinate (e.g. interval left endpoint, or attribute value).
    pub x: i64,
    /// y coordinate (e.g. interval right endpoint, or class label).
    pub y: i64,
    /// Application record id (payload).
    pub id: u64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: i64, y: i64, id: u64) -> Self {
        Self { x, y, id }
    }

    /// Strict total order by `(x, id)` — the x-partitioning order.
    #[inline]
    pub fn xkey(&self) -> (i64, u64) {
        (self.x, self.id)
    }

    /// Strict total order by `(y, id)` — the "top by y" selection order.
    #[inline]
    pub fn ykey(&self) -> (i64, u64) {
        (self.y, self.id)
    }
}

/// Sort by `(x, id)` ascending.
pub fn sort_by_x(points: &mut [Point]) {
    points.sort_unstable_by_key(Point::xkey);
}

/// Sort by `(y, id)` descending (largest y first).
pub fn sort_by_y_desc(points: &mut [Point]) {
    points.sort_unstable_by_key(|p| std::cmp::Reverse(p.ykey()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_break_ties_by_id() {
        let mut pts = vec![
            Point::new(1, 5, 2),
            Point::new(1, 5, 1),
            Point::new(0, 9, 3),
        ];
        sort_by_x(&mut pts);
        assert_eq!(pts[0].id, 3);
        assert_eq!(pts[1].id, 1);
        assert_eq!(pts[2].id, 2);
        sort_by_y_desc(&mut pts);
        assert_eq!(pts[0].id, 3);
        assert_eq!(pts[1].id, 2);
        assert_eq!(pts[2].id, 1);
    }
}
