//! Typed paged storage.
//!
//! [`TypedStore<T>`] models a disk whose pages each hold up to `B` records of
//! type `T`. This is the storage used by the metablock trees, priority search
//! trees and interval structures: the paper measures everything in units of
//! "records per block", so a typed page with enforced capacity is the exact
//! cost model, without the noise of byte-level encodings. (The B+-tree crate
//! uses the byte-level [`crate::Disk`] instead, to demonstrate a conventional
//! serialised node layout on the same accounting substrate.)

use crate::backend::{BackendSpec, FileConfig, FileMirror};
use crate::ser::FixedBytes;
use crate::stats::IoCounter;
use std::path::Path;
use std::sync::Arc;

/// Identifier of a page within one [`TypedStore`] or [`crate::Disk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A paged store of records of type `T` with page capacity `B`.
///
/// Reads and writes are charged one I/O per page through the shared
/// [`IoCounter`]. Allocation writes the initial contents (one I/O), matching
/// the convention that building a structure pays for every page it emits.
///
/// Pages are held behind [`Arc`] so a store can be [`TypedStore::fork`]ed
/// into a copy-on-write snapshot in O(pages) pointer bumps: the fork shares
/// every page buffer with the original, and subsequent in-place mutations on
/// either side ([`TypedStore::append`]) clone only the touched page. This is
/// the storage half of the epoch-snapshot mechanism the serving layer uses;
/// I/O accounting is unchanged because sharing is invisible to the charge
/// points.
#[derive(Debug)]
pub struct TypedStore<T> {
    pages: Vec<Option<Arc<Vec<T>>>>,
    free: Vec<PageId>,
    /// Recycled page buffers: freed pages park their (cleared) `Vec`
    /// allocations here and `alloc_run` reuses them, so the free→realloc
    /// churn of the amortised reorganisations stops hitting the allocator.
    /// Purely a wall-clock matter — I/O charges are identical.
    spare: Vec<Vec<T>>,
    capacity: usize,
    counter: IoCounter,
    /// The physical half of a file-backed store ([`BackendSpec::File`]):
    /// every mutation is written through to a real file, every charged
    /// read runs the cache-or-`pread` path. `None` (the default) is the
    /// pure in-memory model — the source of truth for all exact-I/O gates,
    /// whose behaviour is bit-identical whether or not a mirror is
    /// attached.
    file: Option<FileMirror<T>>,
}

/// Cap on recycled page buffers kept per store (beyond this, freed buffers
/// are dropped as before).
const SPARE_CAP: usize = 1024;

impl<T: Clone> TypedStore<T> {
    /// Create a store whose pages hold up to `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, counter: IoCounter) -> Self {
        assert!(capacity > 0, "page capacity must be positive");
        Self {
            pages: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
            capacity,
            counter,
            file: None,
        }
    }

    /// Page capacity `B` in records.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The I/O counter charged by this store.
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// Resolve a live page slot or panic naming the operation **and the
    /// page id**, distinguishing a freed page from one never allocated.
    /// An attributable panic here is the poisoning that turns a
    /// use-after-free in a reorganisation into an immediate, debuggable
    /// failure instead of a silently skewed I/O count.
    #[track_caller]
    fn live(&self, id: PageId, what: &str) -> &Arc<Vec<T>> {
        match self.pages.get(id.index()) {
            Some(Some(page)) => page,
            Some(None) => panic!("{what} freed page {id:?}"),
            None => panic!("{what} unallocated page {id:?}"),
        }
    }

    /// As [`TypedStore::live`], mutably.
    #[track_caller]
    fn live_mut(&mut self, id: PageId, what: &str) -> &mut Arc<Vec<T>> {
        match self.pages.get_mut(id.index()) {
            Some(Some(page)) => page,
            Some(None) => panic!("{what} freed page {id:?}"),
            None => panic!("{what} unallocated page {id:?}"),
        }
    }

    /// Allocate a page initialised with `records` (≤ capacity). Costs one
    /// write I/O.
    pub fn alloc(&mut self, records: Vec<T>) -> PageId {
        assert!(
            records.len() <= self.capacity,
            "page overflow: {} records into capacity {}",
            records.len(),
            self.capacity
        );
        self.counter.add_writes(1);
        let id = if let Some(id) = self.free.pop() {
            self.pages[id.index()] = Some(Arc::new(records));
            id
        } else {
            let id = PageId(u32::try_from(self.pages.len()).expect("page id overflow"));
            self.pages.push(Some(Arc::new(records)));
            id
        };
        if let Some(m) = &self.file {
            m.write_page(id, self.pages[id.index()].as_ref().expect("just allocated"));
        }
        id
    }

    /// Allocate a run of pages holding `records` in order, `capacity` per
    /// page. Returns the page ids in run order. Costs one write per page.
    pub fn alloc_run(&mut self, records: &[T]) -> Vec<PageId> {
        records
            .chunks(self.capacity)
            .map(|chunk| {
                let mut page = self
                    .spare
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(self.capacity));
                page.extend_from_slice(chunk);
                self.alloc(page)
            })
            .collect()
    }

    /// Read a page. Costs one read I/O.
    ///
    /// # Panics
    /// Panics if the page was never allocated or has been freed.
    pub fn read(&self, id: PageId) -> &[T] {
        self.counter.add_reads(1);
        let page = self.live(id, "read of");
        if let Some(m) = &self.file {
            m.read_page(id, page);
        }
        page
    }

    /// Fork a copy-on-write snapshot of this store, charging future I/O on
    /// the fork to `counter`.
    ///
    /// The fork shares every live page buffer with the original (an `Arc`
    /// bump per page, no data copied); a later in-place mutation on either
    /// side clones just the page it touches. Forking itself is uncharged —
    /// it models publishing an epoch of an already-materialised structure,
    /// not a transfer — and the fresh counter keeps snapshot readers from
    /// polluting the writer's accounting (or its active shunt).
    ///
    /// Forks are always **model-backed**, even when the parent is file-
    /// backed: an epoch is an in-memory publication, and the writer is
    /// free to overwrite a copy-on-write-shared slot on disk after the
    /// fork — the snapshot must never see that.
    pub fn fork(&self, counter: IoCounter) -> Self {
        Self {
            pages: self.pages.clone(),
            free: self.free.clone(),
            spare: Vec::new(),
            capacity: self.capacity,
            counter,
            file: None,
        }
    }

    /// Append one record to a live page in place: the read-modify-write of
    /// a buffer append — one read plus one write I/O, exactly what the
    /// separate `read`/`write` pair charges — without cloning the page
    /// buffer through the caller.
    ///
    /// # Panics
    /// Panics if the page is freed or already at capacity.
    pub fn append(&mut self, id: PageId, record: T) {
        self.counter.add_reads(1);
        self.counter.add_writes(1);
        let capacity = self.capacity;
        let page = self.live_mut(id, "append to");
        assert!(
            page.len() < capacity,
            "page overflow: append to a full page of capacity {capacity}"
        );
        Arc::make_mut(page).push(record);
        if let Some(m) = &self.file {
            m.write_page(id, self.pages[id.index()].as_ref().expect("live"));
        }
    }

    /// Overwrite a page. Costs one write I/O.
    pub fn write(&mut self, id: PageId, records: Vec<T>) {
        assert!(
            records.len() <= self.capacity,
            "page overflow: {} records into capacity {}",
            records.len(),
            self.capacity
        );
        self.live(id, "write to");
        self.counter.add_writes(1);
        if let Some(m) = &self.file {
            m.write_page(id, &records);
        }
        self.pages[id.index()] = Some(Arc::new(records));
    }

    /// Release a page back to the free list. Free of charge (deallocation
    /// needs no transfer). The page's buffer is recycled for `alloc_run`.
    pub fn free(&mut self, id: PageId) {
        let slot = match self.pages.get_mut(id.index()) {
            Some(slot) => slot,
            None => panic!("free of unallocated page {id:?}"),
        };
        let Some(page) = slot.take() else {
            panic!("double free of page {id:?}")
        };
        // Recycling only works when no snapshot still shares the buffer;
        // otherwise the Arc keeps the page alive for its readers and we
        // simply drop our reference (epoch-based reclamation: the last
        // snapshot to release the page frees it).
        if self.spare.len() < SPARE_CAP {
            if let Ok(mut page) = Arc::try_unwrap(page) {
                page.clear();
                self.spare.push(page);
            }
        }
        if let Some(m) = &self.file {
            m.free_page(id);
        }
        self.free.push(id);
    }

    /// Release every page in `ids`.
    ///
    /// In debug builds a duplicate id within one run panics up front,
    /// naming the page — catching the bug at its source instead of as a
    /// double free partway through the run.
    pub fn free_run(&mut self, ids: &[PageId]) {
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::with_capacity(ids.len());
            for &id in ids {
                assert!(seen.insert(id), "duplicate page {id:?} in free_run");
            }
        }
        for &id in ids {
            self.free(id);
        }
    }

    /// Number of live (allocated, unfreed) pages — the structure's space in
    /// disk blocks.
    pub fn pages_in_use(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Number of records on page `id` without charging an I/O.
    ///
    /// Only for assertions and space accounting in tests; never used on a
    /// measured query path.
    pub fn len_unbilled(&self, id: PageId) -> usize {
        self.live(id, "len of").len()
    }

    /// Read a page without charging an I/O.
    ///
    /// Only for validation code in tests (oracle comparisons, invariant
    /// checks); never used on a measured query path.
    pub fn read_unbilled(&self, id: PageId) -> &[T] {
        self.read_unbilled_internal(id)
    }

    /// Uncharged access for the pinning layer, which bills through
    /// [`crate::PathPin`] instead.
    pub(crate) fn read_unbilled_internal(&self, id: PageId) -> &[T] {
        self.live(id, "read of")
    }

    /// The file mirror, for the pinning layer's miss path.
    pub(crate) fn file_mirror(&self) -> Option<&FileMirror<T>> {
        self.file.as_ref()
    }

    /// Whether this store mirrors its pages onto a real file.
    pub fn is_file_backed(&self) -> bool {
        self.file.is_some()
    }

    /// `(cold, warm)` charged-read counts of the file backend: cold reads
    /// hit the file with a real `pread`, warm ones were served by the
    /// in-process page cache. `None` on the model backend.
    pub fn file_stats(&self) -> Option<(u64, u64)> {
        self.file.as_ref().map(FileMirror::stats)
    }

    /// Empty the file backend's page cache so the next charged reads are
    /// all cold (cold-cache measurement). No-op on the model backend.
    pub fn clear_file_cache(&self) {
        if let Some(m) = &self.file {
            m.clear_cache();
        }
    }

    /// Path of the backing page file, if file-backed.
    pub fn file_path(&self) -> Option<&Path> {
        self.file.as_ref().map(FileMirror::path)
    }

    /// Raw on-disk bytes of a live page's record area, read straight from
    /// the backing file with the cache bypassed and nothing charged.
    /// `None` on the model backend. Only for differential tests comparing
    /// disk images against the model encoding.
    pub fn file_page_bytes(&self, id: PageId) -> Option<Vec<u8>> {
        let len = self.live(id, "file image of").len();
        self.file.as_ref().map(|m| m.slot_bytes_raw(id, len))
    }

    /// Ids of every live page, ascending. Uncharged; for tests and space
    /// walks (persist, differential image comparison).
    pub fn live_page_ids(&self) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| PageId(i as u32)))
            .collect()
    }
}

impl<T: Clone + FixedBytes> TypedStore<T> {
    /// Create a store on the given backend: [`BackendSpec::Model`] is
    /// exactly [`TypedStore::new`]; [`BackendSpec::File`] additionally
    /// opens a fresh page file (a unique name under the config's
    /// directory) that every mutation is written through to.
    pub fn new_on(spec: &BackendSpec, capacity: usize, counter: IoCounter) -> Self {
        let mut store = Self::new(capacity, counter);
        if let BackendSpec::File(cfg) = spec {
            store.file = Some(FileMirror::create(cfg, capacity));
        }
        store
    }

    /// Make a file-backed store durable: fsync the page file and publish
    /// the sidecar meta (free list + per-page record counts) atomically,
    /// so [`TypedStore::open_from_file`] can rebuild the store from the
    /// file pair alone. No-op on the model backend.
    pub fn persist(&self) {
        let Some(m) = &self.file else { return };
        let live: Vec<(u32, u32)> = self
            .pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (i as u32, p.len() as u32)))
            .collect();
        m.persist(self.capacity, self.pages.len(), &live, &self.free);
    }

    /// `(page id, encoded bytes)` images of every live **model** page, in
    /// ascending id order, encoded via [`FixedBytes`] exactly as the file
    /// backend writes them. Uncharged; pairs with
    /// [`TypedStore::file_page_bytes`] in the differential backend suite.
    pub fn page_images(&self) -> Vec<(u32, Vec<u8>)> {
        self.live_page_ids()
            .into_iter()
            .map(|id| {
                let mut buf = Vec::new();
                crate::ser::encode_records(self.read_unbilled(id), &mut buf);
                (id.0, buf)
            })
            .collect()
    }

    /// As [`TypedStore::page_images`], reading each page back from the
    /// **file** backend (cache bypassed, nothing charged). `None` on the
    /// model backend.
    pub fn file_page_images(&self) -> Option<Vec<(u32, Vec<u8>)>> {
        self.live_page_ids()
            .into_iter()
            .map(|id| self.file_page_bytes(id).map(|b| (id.0, b)))
            .collect()
    }

    /// Reopen a store persisted by [`TypedStore::persist`]: every live
    /// page is read back from the file and decoded, and the free list is
    /// restored, so on-disk slots keep being recycled exactly where the
    /// persisted store would have recycled them.
    ///
    /// # Panics
    /// Panics if the file pair is missing, torn or inconsistent —
    /// recovery *policy* (checkpoints, WAL replay) lives in
    /// `ccix-durable`, this is the mechanism underneath it.
    pub fn open_from_file(cfg: &FileConfig, path: &Path, counter: IoCounter) -> Self {
        let (mirror, image) = FileMirror::load(cfg, path);
        Self {
            pages: image.pages.into_iter().map(|p| p.map(Arc::new)).collect(),
            free: image.free,
            spare: Vec::new(),
            capacity: image.capacity,
            counter,
            file: Some(mirror),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cap: usize) -> TypedStore<u32> {
        TypedStore::new(cap, IoCounter::new())
    }

    #[test]
    fn alloc_read_roundtrip() {
        let mut s = store(4);
        let id = s.alloc(vec![1, 2, 3]);
        assert_eq!(s.read(id), &[1, 2, 3]);
        assert_eq!(s.counter().reads(), 1);
        assert_eq!(s.counter().writes(), 1);
    }

    #[test]
    fn alloc_run_chunks_by_capacity() {
        let mut s = store(3);
        let ids = s.alloc_run(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(ids.len(), 3);
        assert_eq!(s.read(ids[0]), &[1, 2, 3]);
        assert_eq!(s.read(ids[1]), &[4, 5, 6]);
        assert_eq!(s.read(ids[2]), &[7]);
        assert_eq!(s.counter().writes(), 3);
    }

    #[test]
    fn append_charges_a_read_modify_write() {
        let mut s = store(3);
        let id = s.alloc(vec![1]);
        let before = s.counter().snapshot();
        s.append(id, 2);
        let d = s.counter().since(before);
        assert_eq!((d.reads, d.writes), (1, 1));
        assert_eq!(s.read_unbilled(id), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn append_to_full_page_panics() {
        let mut s = store(2);
        let id = s.alloc(vec![1, 2]);
        s.append(id, 3);
    }

    #[test]
    fn free_and_reuse() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free(a);
        assert_eq!(s.pages_in_use(), 0);
        let b = s.alloc(vec![2]);
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(s.pages_in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn overflow_panics() {
        let mut s = store(2);
        s.alloc(vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "double free of page PageId(0)")]
    fn double_free_panics_with_page_id() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free(a);
        s.free(a);
    }

    #[test]
    #[should_panic(expected = "read of freed page PageId(1)")]
    fn read_after_free_panics_with_page_id() {
        let mut s = store(2);
        let _keep = s.alloc(vec![0]);
        let a = s.alloc(vec![1]);
        s.free(a);
        s.read(a);
    }

    #[test]
    #[should_panic(expected = "read of unallocated page PageId(7)")]
    fn read_of_unallocated_page_names_it() {
        let s = store(2);
        s.read(PageId(7));
    }

    #[test]
    #[should_panic(expected = "append to freed page PageId(0)")]
    fn append_after_free_panics_with_page_id() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free(a);
        s.append(a, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duplicate page PageId(0) in free_run")]
    fn free_run_rejects_duplicates_in_debug() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free_run(&[a, a]);
    }

    #[test]
    fn fork_is_uncharged_and_copy_on_write() {
        let mut s = store(4);
        let a = s.alloc(vec![1, 2]);
        let snap_counter = IoCounter::new();
        let f = s.fork(snap_counter.clone());
        assert_eq!(s.counter().total(), 1, "fork charges nothing");
        assert_eq!(snap_counter.total(), 0);

        // Mutating the original never shows through the fork.
        s.append(a, 3);
        s.write(a, vec![9]);
        assert_eq!(f.read(a), &[1, 2], "fork sees the frozen page");
        assert_eq!(s.read_unbilled(a), &[9]);
        // Fork reads bill the fork's counter, not the original's.
        assert_eq!(snap_counter.reads(), 1);

        // Freeing a shared page on the original leaves the fork intact.
        s.free(a);
        assert_eq!(f.read_unbilled(a), &[1, 2]);
    }

    #[test]
    fn unbilled_access_is_free() {
        let mut s = store(2);
        let a = s.alloc(vec![9]);
        let w = s.counter().writes();
        let r = s.counter().reads();
        assert_eq!(s.read_unbilled(a), &[9]);
        assert_eq!(s.len_unbilled(a), 1);
        assert_eq!(s.counter().reads(), r);
        assert_eq!(s.counter().writes(), w);
    }
}
