//! Typed paged storage.
//!
//! [`TypedStore<T>`] models a disk whose pages each hold up to `B` records of
//! type `T`. This is the storage used by the metablock trees, priority search
//! trees and interval structures: the paper measures everything in units of
//! "records per block", so a typed page with enforced capacity is the exact
//! cost model, without the noise of byte-level encodings. (The B+-tree crate
//! uses the byte-level [`crate::Disk`] instead, to demonstrate a conventional
//! serialised node layout on the same accounting substrate.)

use crate::stats::IoCounter;
use std::sync::Arc;

/// Identifier of a page within one [`TypedStore`] or [`crate::Disk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    #[inline]
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A paged store of records of type `T` with page capacity `B`.
///
/// Reads and writes are charged one I/O per page through the shared
/// [`IoCounter`]. Allocation writes the initial contents (one I/O), matching
/// the convention that building a structure pays for every page it emits.
///
/// Pages are held behind [`Arc`] so a store can be [`TypedStore::fork`]ed
/// into a copy-on-write snapshot in O(pages) pointer bumps: the fork shares
/// every page buffer with the original, and subsequent in-place mutations on
/// either side ([`TypedStore::append`]) clone only the touched page. This is
/// the storage half of the epoch-snapshot mechanism the serving layer uses;
/// I/O accounting is unchanged because sharing is invisible to the charge
/// points.
#[derive(Debug)]
pub struct TypedStore<T> {
    pages: Vec<Option<Arc<Vec<T>>>>,
    free: Vec<PageId>,
    /// Recycled page buffers: freed pages park their (cleared) `Vec`
    /// allocations here and `alloc_run` reuses them, so the free→realloc
    /// churn of the amortised reorganisations stops hitting the allocator.
    /// Purely a wall-clock matter — I/O charges are identical.
    spare: Vec<Vec<T>>,
    capacity: usize,
    counter: IoCounter,
}

/// Cap on recycled page buffers kept per store (beyond this, freed buffers
/// are dropped as before).
const SPARE_CAP: usize = 1024;

impl<T: Clone> TypedStore<T> {
    /// Create a store whose pages hold up to `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, counter: IoCounter) -> Self {
        assert!(capacity > 0, "page capacity must be positive");
        Self {
            pages: Vec::new(),
            free: Vec::new(),
            spare: Vec::new(),
            capacity,
            counter,
        }
    }

    /// Page capacity `B` in records.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The I/O counter charged by this store.
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// Resolve a live page slot or panic naming the operation **and the
    /// page id**, distinguishing a freed page from one never allocated.
    /// An attributable panic here is the poisoning that turns a
    /// use-after-free in a reorganisation into an immediate, debuggable
    /// failure instead of a silently skewed I/O count.
    #[track_caller]
    fn live(&self, id: PageId, what: &str) -> &Arc<Vec<T>> {
        match self.pages.get(id.index()) {
            Some(Some(page)) => page,
            Some(None) => panic!("{what} freed page {id:?}"),
            None => panic!("{what} unallocated page {id:?}"),
        }
    }

    /// As [`TypedStore::live`], mutably.
    #[track_caller]
    fn live_mut(&mut self, id: PageId, what: &str) -> &mut Arc<Vec<T>> {
        match self.pages.get_mut(id.index()) {
            Some(Some(page)) => page,
            Some(None) => panic!("{what} freed page {id:?}"),
            None => panic!("{what} unallocated page {id:?}"),
        }
    }

    /// Allocate a page initialised with `records` (≤ capacity). Costs one
    /// write I/O.
    pub fn alloc(&mut self, records: Vec<T>) -> PageId {
        assert!(
            records.len() <= self.capacity,
            "page overflow: {} records into capacity {}",
            records.len(),
            self.capacity
        );
        self.counter.add_writes(1);
        if let Some(id) = self.free.pop() {
            self.pages[id.index()] = Some(Arc::new(records));
            id
        } else {
            let id = PageId(u32::try_from(self.pages.len()).expect("page id overflow"));
            self.pages.push(Some(Arc::new(records)));
            id
        }
    }

    /// Allocate a run of pages holding `records` in order, `capacity` per
    /// page. Returns the page ids in run order. Costs one write per page.
    pub fn alloc_run(&mut self, records: &[T]) -> Vec<PageId> {
        records
            .chunks(self.capacity)
            .map(|chunk| {
                let mut page = self
                    .spare
                    .pop()
                    .unwrap_or_else(|| Vec::with_capacity(self.capacity));
                page.extend_from_slice(chunk);
                self.alloc(page)
            })
            .collect()
    }

    /// Read a page. Costs one read I/O.
    ///
    /// # Panics
    /// Panics if the page was never allocated or has been freed.
    pub fn read(&self, id: PageId) -> &[T] {
        self.counter.add_reads(1);
        self.live(id, "read of")
    }

    /// Fork a copy-on-write snapshot of this store, charging future I/O on
    /// the fork to `counter`.
    ///
    /// The fork shares every live page buffer with the original (an `Arc`
    /// bump per page, no data copied); a later in-place mutation on either
    /// side clones just the page it touches. Forking itself is uncharged —
    /// it models publishing an epoch of an already-materialised structure,
    /// not a transfer — and the fresh counter keeps snapshot readers from
    /// polluting the writer's accounting (or its active shunt).
    pub fn fork(&self, counter: IoCounter) -> Self {
        Self {
            pages: self.pages.clone(),
            free: self.free.clone(),
            spare: Vec::new(),
            capacity: self.capacity,
            counter,
        }
    }

    /// Append one record to a live page in place: the read-modify-write of
    /// a buffer append — one read plus one write I/O, exactly what the
    /// separate `read`/`write` pair charges — without cloning the page
    /// buffer through the caller.
    ///
    /// # Panics
    /// Panics if the page is freed or already at capacity.
    pub fn append(&mut self, id: PageId, record: T) {
        self.counter.add_reads(1);
        self.counter.add_writes(1);
        let capacity = self.capacity;
        let page = self.live_mut(id, "append to");
        assert!(
            page.len() < capacity,
            "page overflow: append to a full page of capacity {capacity}"
        );
        Arc::make_mut(page).push(record);
    }

    /// Overwrite a page. Costs one write I/O.
    pub fn write(&mut self, id: PageId, records: Vec<T>) {
        assert!(
            records.len() <= self.capacity,
            "page overflow: {} records into capacity {}",
            records.len(),
            self.capacity
        );
        self.live(id, "write to");
        self.counter.add_writes(1);
        self.pages[id.index()] = Some(Arc::new(records));
    }

    /// Release a page back to the free list. Free of charge (deallocation
    /// needs no transfer). The page's buffer is recycled for `alloc_run`.
    pub fn free(&mut self, id: PageId) {
        let slot = match self.pages.get_mut(id.index()) {
            Some(slot) => slot,
            None => panic!("free of unallocated page {id:?}"),
        };
        let Some(page) = slot.take() else {
            panic!("double free of page {id:?}")
        };
        // Recycling only works when no snapshot still shares the buffer;
        // otherwise the Arc keeps the page alive for its readers and we
        // simply drop our reference (epoch-based reclamation: the last
        // snapshot to release the page frees it).
        if self.spare.len() < SPARE_CAP {
            if let Ok(mut page) = Arc::try_unwrap(page) {
                page.clear();
                self.spare.push(page);
            }
        }
        self.free.push(id);
    }

    /// Release every page in `ids`.
    ///
    /// In debug builds a duplicate id within one run panics up front,
    /// naming the page — catching the bug at its source instead of as a
    /// double free partway through the run.
    pub fn free_run(&mut self, ids: &[PageId]) {
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::with_capacity(ids.len());
            for &id in ids {
                assert!(seen.insert(id), "duplicate page {id:?} in free_run");
            }
        }
        for &id in ids {
            self.free(id);
        }
    }

    /// Number of live (allocated, unfreed) pages — the structure's space in
    /// disk blocks.
    pub fn pages_in_use(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Number of records on page `id` without charging an I/O.
    ///
    /// Only for assertions and space accounting in tests; never used on a
    /// measured query path.
    pub fn len_unbilled(&self, id: PageId) -> usize {
        self.live(id, "len of").len()
    }

    /// Read a page without charging an I/O.
    ///
    /// Only for validation code in tests (oracle comparisons, invariant
    /// checks); never used on a measured query path.
    pub fn read_unbilled(&self, id: PageId) -> &[T] {
        self.read_unbilled_internal(id)
    }

    /// Uncharged access for the pinning layer, which bills through
    /// [`crate::PathPin`] instead.
    pub(crate) fn read_unbilled_internal(&self, id: PageId) -> &[T] {
        self.live(id, "read of")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(cap: usize) -> TypedStore<u32> {
        TypedStore::new(cap, IoCounter::new())
    }

    #[test]
    fn alloc_read_roundtrip() {
        let mut s = store(4);
        let id = s.alloc(vec![1, 2, 3]);
        assert_eq!(s.read(id), &[1, 2, 3]);
        assert_eq!(s.counter().reads(), 1);
        assert_eq!(s.counter().writes(), 1);
    }

    #[test]
    fn alloc_run_chunks_by_capacity() {
        let mut s = store(3);
        let ids = s.alloc_run(&[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(ids.len(), 3);
        assert_eq!(s.read(ids[0]), &[1, 2, 3]);
        assert_eq!(s.read(ids[1]), &[4, 5, 6]);
        assert_eq!(s.read(ids[2]), &[7]);
        assert_eq!(s.counter().writes(), 3);
    }

    #[test]
    fn append_charges_a_read_modify_write() {
        let mut s = store(3);
        let id = s.alloc(vec![1]);
        let before = s.counter().snapshot();
        s.append(id, 2);
        let d = s.counter().since(before);
        assert_eq!((d.reads, d.writes), (1, 1));
        assert_eq!(s.read_unbilled(id), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn append_to_full_page_panics() {
        let mut s = store(2);
        let id = s.alloc(vec![1, 2]);
        s.append(id, 3);
    }

    #[test]
    fn free_and_reuse() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free(a);
        assert_eq!(s.pages_in_use(), 0);
        let b = s.alloc(vec![2]);
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(s.pages_in_use(), 1);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn overflow_panics() {
        let mut s = store(2);
        s.alloc(vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "double free of page PageId(0)")]
    fn double_free_panics_with_page_id() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free(a);
        s.free(a);
    }

    #[test]
    #[should_panic(expected = "read of freed page PageId(1)")]
    fn read_after_free_panics_with_page_id() {
        let mut s = store(2);
        let _keep = s.alloc(vec![0]);
        let a = s.alloc(vec![1]);
        s.free(a);
        s.read(a);
    }

    #[test]
    #[should_panic(expected = "read of unallocated page PageId(7)")]
    fn read_of_unallocated_page_names_it() {
        let s = store(2);
        s.read(PageId(7));
    }

    #[test]
    #[should_panic(expected = "append to freed page PageId(0)")]
    fn append_after_free_panics_with_page_id() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free(a);
        s.append(a, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "duplicate page PageId(0) in free_run")]
    fn free_run_rejects_duplicates_in_debug() {
        let mut s = store(2);
        let a = s.alloc(vec![1]);
        s.free_run(&[a, a]);
    }

    #[test]
    fn fork_is_uncharged_and_copy_on_write() {
        let mut s = store(4);
        let a = s.alloc(vec![1, 2]);
        let snap_counter = IoCounter::new();
        let f = s.fork(snap_counter.clone());
        assert_eq!(s.counter().total(), 1, "fork charges nothing");
        assert_eq!(snap_counter.total(), 0);

        // Mutating the original never shows through the fork.
        s.append(a, 3);
        s.write(a, vec![9]);
        assert_eq!(f.read(a), &[1, 2], "fork sees the frozen page");
        assert_eq!(s.read_unbilled(a), &[9]);
        // Fork reads bill the fork's counter, not the original's.
        assert_eq!(snap_counter.reads(), 1);

        // Freeing a shared page on the original leaves the fork intact.
        s.free(a);
        assert_eq!(f.read_unbilled(a), &[1, 2]);
    }

    #[test]
    fn unbilled_access_is_free() {
        let mut s = store(2);
        let a = s.alloc(vec![9]);
        let w = s.counter().writes();
        let r = s.counter().reads();
        assert_eq!(s.read_unbilled(a), &[9]);
        assert_eq!(s.len_unbilled(a), 1);
        assert_eq!(s.counter().reads(), r);
        assert_eq!(s.counter().writes(), w);
    }
}
