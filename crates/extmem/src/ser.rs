//! Page serialization hooks.
//!
//! The model stores ([`crate::TypedStore`], [`crate::Disk`]) keep pages in
//! memory because the paper's cost model only counts transfers. A durable
//! backend, however, has to put records into real bytes. This module is the
//! bridge: a record type that implements [`FixedBytes`] declares a
//! fixed-width little-endian encoding, and [`encode_records`] /
//! [`decode_records`] turn record runs into byte frames the durability
//! layer (`ccix-durable`) writes as checkpoint pages and WAL payloads.
//!
//! The encoding is deliberately boring — fixed width, little-endian, no
//! varints — so a frame of `k` records is exactly `k * SIZE` bytes and a
//! torn tail is detectable by length arithmetic alone, before any checksum
//! is consulted.

use crate::point::Point;

/// A record with a fixed-width, position-independent byte encoding.
///
/// Implementations must round-trip exactly: `decode(encode(r)) == r` for
/// every value, and `encode` must write exactly [`FixedBytes::SIZE`] bytes.
pub trait FixedBytes: Sized {
    /// Encoded width in bytes.
    const SIZE: usize;

    /// Append the encoding of `self` to `out` (exactly [`FixedBytes::SIZE`]
    /// bytes).
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decode one record from `bytes` (exactly [`FixedBytes::SIZE`] bytes).
    ///
    /// Returns `None` if the bytes are not a valid encoding (for types
    /// with invalid bit patterns; plain integer records never fail).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl FixedBytes for Point {
    const SIZE: usize = 24;

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.x.to_le_bytes());
        out.extend_from_slice(&self.y.to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::SIZE {
            return None;
        }
        let x = i64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let y = i64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let id = u64::from_le_bytes(bytes[16..24].try_into().ok()?);
        Some(Point::new(x, y, id))
    }
}

impl FixedBytes for u64 {
    const SIZE: usize = 8;

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl FixedBytes for u32 {
    const SIZE: usize = 4;

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u32::from_le_bytes(bytes.try_into().ok()?))
    }
}

/// Bytes are their own encoding — this is what lets [`crate::Disk`]'s raw
/// byte pages ride the same file mirror as the typed stores.
impl FixedBytes for u8 {
    const SIZE: usize = 1;

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [b] => Some(*b),
            _ => None,
        }
    }
}

/// Append the encodings of `records` to `out` (a frame of
/// `records.len() * T::SIZE` bytes).
pub fn encode_records<T: FixedBytes>(records: &[T], out: &mut Vec<u8>) {
    out.reserve(records.len() * T::SIZE);
    for r in records {
        r.encode_into(out);
    }
}

/// Decode a frame produced by [`encode_records`]. Returns `None` if the
/// frame length is not a multiple of the record width or any record fails
/// to decode.
pub fn decode_records<T: FixedBytes>(bytes: &[u8]) -> Option<Vec<T>> {
    if !bytes.len().is_multiple_of(T::SIZE) {
        return None;
    }
    bytes.chunks_exact(T::SIZE).map(T::decode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip_exact_width() {
        let pts = vec![
            Point::new(i64::MIN, i64::MAX, 0),
            Point::new(-1, 1, u64::MAX),
            Point::new(42, 99, 7),
        ];
        let mut buf = Vec::new();
        encode_records(&pts, &mut buf);
        assert_eq!(buf.len(), pts.len() * <Point as FixedBytes>::SIZE);
        assert_eq!(decode_records::<Point>(&buf).expect("roundtrip"), pts);
    }

    #[test]
    fn torn_frame_is_rejected_by_length() {
        let mut buf = Vec::new();
        encode_records(&[Point::new(1, 2, 3)], &mut buf);
        buf.pop();
        assert!(decode_records::<Point>(&buf).is_none());
    }
}
