//! An LRU buffer pool over a [`Disk`].
//!
//! The paper's bounds assume every block access is an I/O; the measured query
//! paths therefore use the raw stores. The pool exists for the complementary
//! experiment ("how much does a small cache recover in practice?") and for
//! realism in the example applications.

use std::collections::HashMap;

use crate::disk::Disk;
use crate::store::PageId;

/// A fixed-capacity least-recently-used page cache.
///
/// Reads served from the pool cost no I/O; misses read through to the
/// underlying [`Disk`] (one I/O) and may evict. Writes are write-through:
/// they always cost one I/O and refresh the cached copy.
#[derive(Debug)]
pub struct BufferPool {
    frames: usize,
    clock: u64,
    cache: HashMap<PageId, (Vec<u8>, u64)>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Create a pool holding up to `frames` pages.
    ///
    /// # Panics
    /// Panics if `frames == 0`.
    pub fn new(frames: usize) -> Self {
        assert!(frames > 0, "pool needs at least one frame");
        Self {
            frames,
            clock: 0,
            cache: HashMap::with_capacity(frames),
            hits: 0,
            misses: 0,
        }
    }

    /// Read `id`, consulting the cache first.
    ///
    /// Allocates one copy for the caller; the cached copy on a miss is
    /// filled directly from the disk buffer. Use [`BufferPool::read_with`]
    /// to borrow the cached page and skip the allocation entirely.
    pub fn read(&mut self, disk: &Disk, id: PageId) -> Vec<u8> {
        self.read_with(disk, id, <[u8]>::to_vec)
    }

    /// Read `id` and pass the page bytes to `f` without copying them out of
    /// the cache.
    pub fn read_with<R>(&mut self, disk: &Disk, id: PageId, f: impl FnOnce(&[u8]) -> R) -> R {
        self.clock += 1;
        if let Some((buf, used)) = self.cache.get_mut(&id) {
            *used = self.clock;
            self.hits += 1;
            return f(buf);
        }
        self.misses += 1;
        self.insert(id, disk.read(id).to_vec());
        f(&self.cache[&id].0)
    }

    /// Write through to the disk and refresh the cached copy.
    pub fn write(&mut self, disk: &mut Disk, id: PageId, buf: &[u8]) {
        self.clock += 1;
        disk.write(id, buf);
        self.insert(id, buf.to_vec());
    }

    /// Drop a page from the cache (e.g. after freeing it on disk).
    pub fn invalidate(&mut self, id: PageId) {
        self.cache.remove(&id);
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn insert(&mut self, id: PageId, buf: Vec<u8>) {
        if self.cache.len() >= self.frames && !self.cache.contains_key(&id) {
            // Evict the least recently used frame. Linear scan is fine: pools
            // in this workspace are small and eviction is off the measured
            // path.
            if let Some((&victim, _)) = self.cache.iter().min_by_key(|(_, (_, used))| *used) {
                self.cache.remove(&victim);
            }
        }
        self.cache.insert(id, (buf, self.clock));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoCounter;

    #[test]
    fn hits_do_not_cost_io() {
        let counter = IoCounter::new();
        let mut disk = Disk::new(8, counter.clone());
        let id = disk.alloc();
        disk.write(id, &[1u8; 8]);
        let mut pool = BufferPool::new(2);
        let before = counter.reads();
        let _ = pool.read(&disk, id); // miss
        let _ = pool.read(&disk, id); // hit
        let _ = pool.read(&disk, id); // hit
        assert_eq!(counter.reads() - before, 1);
        assert_eq!(pool.hits(), 2);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let counter = IoCounter::new();
        let mut disk = Disk::new(4, counter.clone());
        let a = disk.alloc();
        let b = disk.alloc();
        let c = disk.alloc();
        for id in [a, b, c] {
            disk.write(id, &[id.0 as u8; 4]);
        }
        let mut pool = BufferPool::new(2);
        let _ = pool.read(&disk, a);
        let _ = pool.read(&disk, b);
        let _ = pool.read(&disk, c); // evicts a
        let before = counter.reads();
        let _ = pool.read(&disk, b); // hit
        assert_eq!(counter.reads(), before);
        let _ = pool.read(&disk, a); // miss again
        assert_eq!(counter.reads(), before + 1);
    }

    #[test]
    fn read_with_borrows_and_costs_like_read() {
        let counter = IoCounter::new();
        let mut disk = Disk::new(4, counter.clone());
        let id = disk.alloc();
        disk.write(id, &[5u8; 4]);
        let mut pool = BufferPool::new(2);
        let before = counter.reads();
        let sum: u32 = pool.read_with(&disk, id, |b| b.iter().map(|&x| u32::from(x)).sum());
        assert_eq!(sum, 20);
        assert_eq!(counter.reads() - before, 1, "miss reads through");
        let sum2: u32 = pool.read_with(&disk, id, |b| b.iter().map(|&x| u32::from(x)).sum());
        assert_eq!(sum2, 20);
        assert_eq!(counter.reads() - before, 1, "hit is free");
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn write_through_refreshes_cache() {
        let counter = IoCounter::new();
        let mut disk = Disk::new(4, counter.clone());
        let id = disk.alloc();
        disk.write(id, &[0u8; 4]);
        let mut pool = BufferPool::new(1);
        let _ = pool.read(&disk, id);
        pool.write(&mut disk, id, &[9u8; 4]);
        let before = counter.reads();
        let buf = pool.read(&disk, id);
        assert_eq!(buf, vec![9u8; 4]);
        assert_eq!(counter.reads(), before, "served from cache");
    }
}
