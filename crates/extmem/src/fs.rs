//! The filesystem seam everything that touches real disk writes through.
//!
//! Both the durability layer (`ccix-durable`: WAL appends, fsyncs,
//! checkpoint publication) and the file-backed page stores in this crate
//! ([`crate::BackendSpec::File`]) go through the [`Fs`] / [`RawFile`] trait
//! pair, so a fault-injection layer (`ccix_durable::fault::FailFs`) can
//! interpose a power-loss simulator without the WAL, checkpoint or page
//! mirror code knowing. The production implementation ([`RealFs`]) is a
//! thin veneer over `std::fs::File` using `std::os::unix::fs::FileExt`
//! positioned I/O.
//!
//! [`RawFile::write_at`] deliberately has *short-write* semantics (it may
//! write fewer bytes than asked, like the underlying syscall) and may fail
//! with [`std::io::ErrorKind::Interrupted`]; the retry loops live in
//! [`write_all_at`] / [`retry_interrupted`] so both behaviours are
//! exercised by injection rather than assumed away.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

/// One open file handle with positioned I/O.
///
/// `len` is the file length in bytes, not a collection size — there is
/// deliberately no `is_empty` twin.
#[allow(clippy::len_without_is_empty)]
pub trait RawFile: Send {
    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;
    /// Read up to `buf.len()` bytes at `off`; returns the count read
    /// (0 at or past end of file).
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize>;
    /// Write up to `buf.len()` bytes at `off`; returns the count written.
    /// May write a strict prefix (short write) or fail with
    /// `ErrorKind::Interrupted`; callers must loop (see [`write_all_at`]).
    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<usize>;
    /// Truncate or extend the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;
    /// Flush file contents (and length) to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// A filesystem namespace: opens files, renames, syncs directories.
pub trait Fs: Send + Sync {
    /// Open `path` for positioned read/write, creating it if `create`.
    fn open(&self, path: &Path, create: bool) -> io::Result<Box<dyn RawFile>>;
    /// Create `path` and every missing parent directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file; missing files are not an error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Flush directory metadata (the rename journal) to stable storage.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

/// The production filesystem: `std::fs` with `FileExt` positioned I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl RealFs {
    /// A shared handle to the production filesystem.
    pub fn shared() -> Arc<dyn Fs> {
        Arc::new(RealFs)
    }
}

struct RealFile(File);

impl RawFile for RealFile {
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read_at(buf, off)
    }

    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<usize> {
        self.0.write_at(buf, off)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Fs for RealFs {
    fn open(&self, path: &Path, create: bool) -> io::Result<Box<dyn RawFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(create)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directories open read-only; sync_all flushes the entry metadata.
        File::open(path)?.sync_all()
    }
}

/// Write all of `buf` at `off`, looping over short writes and retrying
/// `ErrorKind::Interrupted` (the two transient behaviours the fault layer
/// injects).
pub fn write_all_at(file: &mut dyn RawFile, mut off: u64, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match file.write_at(off, buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::WriteZero, "wrote zero bytes")),
            Ok(n) => {
                off += n as u64;
                buf = &buf[n..];
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Read exactly `buf.len()` bytes at `off`, retrying `Interrupted`.
pub fn read_exact_at(file: &dyn RawFile, mut off: u64, mut buf: &mut [u8]) -> io::Result<()> {
    while !buf.is_empty() {
        match file.read_at(off, buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "read past end of file",
                ))
            }
            Ok(n) => {
                off += n as u64;
                buf = &mut buf[n..];
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Run `op` until it stops failing with `ErrorKind::Interrupted` (used for
/// syncs, where there is no partial progress to track).
pub fn retry_interrupted<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ccix-fs-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mk tmp");
        dir.join("f")
    }

    #[test]
    fn real_file_positioned_roundtrip() {
        let path = tmp("roundtrip");
        let fs = RealFs;
        let mut f = fs.open(&path, true).expect("open");
        f.set_len(0).expect("truncate");
        write_all_at(f.as_mut(), 0, b"hello world").expect("write");
        write_all_at(f.as_mut(), 6, b"there").expect("overwrite");
        let mut buf = [0u8; 11];
        read_exact_at(f.as_ref(), 0, &mut buf).expect("read");
        assert_eq!(&buf, b"hello there");
        assert_eq!(f.len().expect("len"), 11);
        f.set_len(5).expect("shrink");
        assert_eq!(f.len().expect("len"), 5);
        f.sync().expect("sync");
        std::fs::remove_dir_all(path.parent().expect("parent")).ok();
    }
}
