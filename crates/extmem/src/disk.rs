//! Raw byte-addressed page storage.
//!
//! [`Disk`] models a conventional block device: fixed-size byte pages,
//! allocated and freed by id, each access costing one I/O. The B+-tree crate
//! serialises its nodes onto this device exactly like a storage engine would,
//! so its fanout is genuinely determined by the byte size of keys and page
//! headers rather than by fiat.

use crate::stats::IoCounter;
use crate::store::PageId;

/// An owned page-sized byte buffer.
pub type PageBuf = Box<[u8]>;

/// A simulated block device with fixed page size and exact I/O accounting.
#[derive(Debug)]
pub struct Disk {
    page_size: usize,
    pages: Vec<Option<PageBuf>>,
    free: Vec<PageId>,
    counter: IoCounter,
}

impl Disk {
    /// Create a device with pages of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize, counter: IoCounter) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
            counter,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The I/O counter charged by this device.
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// Allocate a zeroed page without touching the counter (allocation is a
    /// metadata operation; the caller pays when it writes contents).
    pub fn alloc(&mut self) -> PageId {
        if let Some(id) = self.free.pop() {
            self.pages[id.0 as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            id
        } else {
            let id = PageId(u32::try_from(self.pages.len()).expect("page id overflow"));
            self.pages
                .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
            id
        }
    }

    /// Read a page into a fresh buffer. Costs one read I/O.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.counter.add_reads(1);
        self.pages[id.0 as usize]
            .as_deref()
            .expect("read of freed page")
    }

    /// Write a full page. Costs one write I/O.
    ///
    /// # Panics
    /// Panics if `buf` is not exactly one page long.
    pub fn write(&mut self, id: PageId, buf: &[u8]) {
        assert_eq!(buf.len(), self.page_size, "partial page write");
        assert!(
            self.pages[id.0 as usize].is_some(),
            "write to freed page {id:?}"
        );
        self.counter.add_writes(1);
        self.pages[id.0 as usize] = Some(buf.to_vec().into_boxed_slice());
    }

    /// Fork a deep-copy snapshot of this device, charging future I/O on the
    /// fork to `counter`.
    ///
    /// Uncharged, like [`crate::TypedStore::fork`] — it models publishing an
    /// epoch, not a transfer. Unlike the typed store the byte device copies
    /// its pages eagerly: it only backs auxiliary structures (the B+-tree
    /// endpoint directory, class-hierarchy baselines) whose page counts are
    /// small next to the point stores, so copy-on-write plumbing isn't worth
    /// the complexity here.
    pub fn fork(&self, counter: IoCounter) -> Self {
        Self {
            page_size: self.page_size,
            pages: self.pages.clone(),
            free: self.free.clone(),
            counter,
        }
    }

    /// Read a page without charging an I/O.
    ///
    /// Only for validation code in tests (oracle comparisons, invariant
    /// checks); never used on a measured query path.
    pub fn read_unbilled(&self, id: PageId) -> &[u8] {
        self.pages[id.0 as usize]
            .as_deref()
            .expect("read of freed page")
    }

    /// Release a page.
    pub fn free_page(&mut self, id: PageId) {
        assert!(
            self.pages[id.0 as usize].take().is_some(),
            "double free of page {id:?}"
        );
        self.free.push(id);
    }

    /// Number of live pages — the structure's space in disk blocks.
    pub fn pages_in_use(&self) -> usize {
        self.pages.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut d = Disk::new(64, IoCounter::new());
        let id = d.alloc();
        let mut buf = vec![0u8; 64];
        buf[0] = 0xAB;
        buf[63] = 0xCD;
        d.write(id, &buf);
        assert_eq!(d.read(id)[0], 0xAB);
        assert_eq!(d.read(id)[63], 0xCD);
        assert_eq!(d.counter().reads(), 2);
        assert_eq!(d.counter().writes(), 1);
    }

    #[test]
    #[should_panic(expected = "partial page write")]
    fn partial_write_panics() {
        let mut d = Disk::new(64, IoCounter::new());
        let id = d.alloc();
        d.write(id, &[0u8; 10]);
    }

    #[test]
    fn free_reuses_slot() {
        let mut d = Disk::new(16, IoCounter::new());
        let a = d.alloc();
        d.free_page(a);
        assert_eq!(d.pages_in_use(), 0);
        let b = d.alloc();
        assert_eq!(a, b);
    }
}
