//! Raw byte-addressed page storage.
//!
//! [`Disk`] models a conventional block device: fixed-size byte pages,
//! allocated and freed by id, each access costing one I/O. The B+-tree crate
//! serialises its nodes onto this device exactly like a storage engine would,
//! so its fanout is genuinely determined by the byte size of keys and page
//! headers rather than by fiat.

use crate::backend::{BackendSpec, FileMirror};
use crate::stats::IoCounter;
use crate::store::PageId;

/// An owned page-sized byte buffer.
pub type PageBuf = Box<[u8]>;

/// A simulated block device with fixed page size and exact I/O accounting.
#[derive(Debug)]
pub struct Disk {
    page_size: usize,
    pages: Vec<Option<PageBuf>>,
    free: Vec<PageId>,
    counter: IoCounter,
    /// Physical mirror when opened on [`BackendSpec::File`]; `None` is
    /// the pure in-memory model (see [`crate::TypedStore`] — same
    /// contract: the model tables stay authoritative, the mirror adds the
    /// real write-through and the cache-or-`pread` read path).
    file: Option<FileMirror<u8>>,
}

impl Disk {
    /// Create a device with pages of `page_size` bytes.
    ///
    /// # Panics
    /// Panics if `page_size == 0`.
    pub fn new(page_size: usize, counter: IoCounter) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            pages: Vec::new(),
            free: Vec::new(),
            counter,
            file: None,
        }
    }

    /// Create a device on the given backend: [`BackendSpec::Model`] is
    /// exactly [`Disk::new`], [`BackendSpec::File`] opens a fresh page
    /// file every page access is mirrored onto.
    pub fn new_on(spec: &BackendSpec, page_size: usize, counter: IoCounter) -> Self {
        let mut disk = Self::new(page_size, counter);
        if let BackendSpec::File(cfg) = spec {
            disk.file = Some(FileMirror::create(cfg, page_size));
        }
        disk
    }

    /// Whether this device mirrors its pages onto a real file.
    pub fn is_file_backed(&self) -> bool {
        self.file.is_some()
    }

    /// `(cold, warm)` charged-read counts of the file backend; `None` on
    /// the model backend.
    pub fn file_stats(&self) -> Option<(u64, u64)> {
        self.file.as_ref().map(FileMirror::stats)
    }

    /// Empty the file backend's page cache (cold-cache measurement).
    pub fn clear_file_cache(&self) {
        if let Some(m) = &self.file {
            m.clear_cache();
        }
    }

    /// Raw on-disk bytes of a live page, cache bypassed, nothing charged.
    /// `None` on the model backend; for differential tests only.
    pub fn file_page_bytes(&self, id: PageId) -> Option<Vec<u8>> {
        assert!(
            self.pages[id.0 as usize].is_some(),
            "file image of freed page {id:?}"
        );
        self.file
            .as_ref()
            .map(|m| m.slot_bytes_raw(id, self.page_size))
    }

    /// Ids of every live page, ascending. Uncharged; for tests.
    pub fn live_page_ids(&self) -> Vec<PageId> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| PageId(i as u32)))
            .collect()
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The I/O counter charged by this device.
    pub fn counter(&self) -> &IoCounter {
        &self.counter
    }

    /// Allocate a zeroed page without touching the counter (allocation is a
    /// metadata operation; the caller pays when it writes contents).
    pub fn alloc(&mut self) -> PageId {
        let id = if let Some(id) = self.free.pop() {
            self.pages[id.0 as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            id
        } else {
            let id = PageId(u32::try_from(self.pages.len()).expect("page id overflow"));
            self.pages
                .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
            id
        };
        if let Some(m) = &self.file {
            m.write_page(id, self.pages[id.0 as usize].as_deref().expect("allocated"));
        }
        id
    }

    /// Read a page into a fresh buffer. Costs one read I/O.
    pub fn read(&self, id: PageId) -> &[u8] {
        self.counter.add_reads(1);
        let page = self.pages[id.0 as usize]
            .as_deref()
            .expect("read of freed page");
        if let Some(m) = &self.file {
            m.read_page(id, page);
        }
        page
    }

    /// Write a full page. Costs one write I/O.
    ///
    /// # Panics
    /// Panics if `buf` is not exactly one page long.
    pub fn write(&mut self, id: PageId, buf: &[u8]) {
        assert_eq!(buf.len(), self.page_size, "partial page write");
        assert!(
            self.pages[id.0 as usize].is_some(),
            "write to freed page {id:?}"
        );
        self.counter.add_writes(1);
        if let Some(m) = &self.file {
            m.write_page(id, buf);
        }
        self.pages[id.0 as usize] = Some(buf.to_vec().into_boxed_slice());
    }

    /// Fork a deep-copy snapshot of this device, charging future I/O on the
    /// fork to `counter`.
    ///
    /// Uncharged, like [`crate::TypedStore::fork`] — it models publishing an
    /// epoch, not a transfer. Unlike the typed store the byte device copies
    /// its pages eagerly: it only backs auxiliary structures (the B+-tree
    /// endpoint directory, class-hierarchy baselines) whose page counts are
    /// small next to the point stores, so copy-on-write plumbing isn't worth
    /// the complexity here.
    /// Forks are always model-backed, like [`crate::TypedStore::fork`]:
    /// an epoch is an in-memory publication.
    pub fn fork(&self, counter: IoCounter) -> Self {
        Self {
            page_size: self.page_size,
            pages: self.pages.clone(),
            free: self.free.clone(),
            counter,
            file: None,
        }
    }

    /// Read a page without charging an I/O.
    ///
    /// Only for validation code in tests (oracle comparisons, invariant
    /// checks); never used on a measured query path.
    pub fn read_unbilled(&self, id: PageId) -> &[u8] {
        self.pages[id.0 as usize]
            .as_deref()
            .expect("read of freed page")
    }

    /// Release a page.
    pub fn free_page(&mut self, id: PageId) {
        assert!(
            self.pages[id.0 as usize].take().is_some(),
            "double free of page {id:?}"
        );
        if let Some(m) = &self.file {
            m.free_page(id);
        }
        self.free.push(id);
    }

    /// Number of live pages — the structure's space in disk blocks.
    pub fn pages_in_use(&self) -> usize {
        self.pages.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut d = Disk::new(64, IoCounter::new());
        let id = d.alloc();
        let mut buf = vec![0u8; 64];
        buf[0] = 0xAB;
        buf[63] = 0xCD;
        d.write(id, &buf);
        assert_eq!(d.read(id)[0], 0xAB);
        assert_eq!(d.read(id)[63], 0xCD);
        assert_eq!(d.counter().reads(), 2);
        assert_eq!(d.counter().writes(), 1);
    }

    #[test]
    #[should_panic(expected = "partial page write")]
    fn partial_write_panics() {
        let mut d = Disk::new(64, IoCounter::new());
        let id = d.alloc();
        d.write(id, &[0u8; 10]);
    }

    #[test]
    fn free_reuses_slot() {
        let mut d = Disk::new(16, IoCounter::new());
        let a = d.alloc();
        d.free_page(a);
        assert_eq!(d.pages_in_use(), 0);
        let b = d.alloc();
        assert_eq!(a, b);
    }
}
