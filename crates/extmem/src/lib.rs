//! # `ccix-extmem` — the external-memory substrate
//!
//! Every data structure in this workspace is analysed in the standard
//! external-memory (I/O) model used by the paper *Indexing for Data Models
//! with Constraints and Classes* (Kanellakis, Ramaswamy, Vengroff, Vitter;
//! PODS'93 / JCSS'96):
//!
//! * secondary storage is an array of **pages** (disk blocks) holding `B`
//!   units of data each;
//! * transferring one page between disk and main memory costs **one I/O**;
//! * main memory can hold `O(B^2)` units of working data;
//! * the cost of an operation is the number of page transfers it performs.
//!
//! This crate provides that model as a small, deterministic simulator:
//!
//! * [`IoStats`] / [`IoCounter`] — shared read/write counters with
//!   checkpointing, so a test or benchmark can measure the exact number of
//!   I/Os performed by a query;
//! * [`TypedStore`] — a paged store whose pages hold up to `B` records of a
//!   concrete type; every page access is charged;
//! * [`Disk`] — a raw byte-addressed page store (used by the B+-tree, which
//!   serialises its nodes to bytes like a real storage engine);
//! * [`BufferPool`] — an LRU cache in front of a [`Disk`] for experiments
//!   that need to show the effect of caching (the paper's bounds assume no
//!   cross-operation caching, so measured paths default to the raw stores).
//!
//! The simulator is intentionally strict: page capacities are enforced, page
//! frees are tracked, and double-frees or out-of-bounds accesses panic, so
//! structural bugs surface in tests rather than skewing I/O counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod disk;
pub mod fs;
mod geometry;
pub mod merge;
mod pin;
mod point;
mod pool;
pub mod ser;
mod stats;
mod store;

pub use backend::{BackendSpec, FileConfig, DEFAULT_CACHE_PAGES, SLOT_ALIGN};
pub use disk::{Disk, PageBuf};
pub use geometry::{near_equal_ranges, Geometry};
pub use merge::{
    merge_delta_y_desc, merge_delta_y_desc_cancel, merge_y_desc, merge_y_desc_capped, MergeCursor,
    SortedRun,
};
pub use pin::PathPin;
pub use point::{sort_by_x, sort_by_y_desc, Point};
pub use pool::BufferPool;
pub use ser::FixedBytes;
pub use stats::{IoCounter, IoSnapshot, IoStats};
pub use store::{PageId, TypedStore};
