//! Block geometry helpers.

/// Parameters of the external-memory model: the block size `B`.
///
/// Bounds throughout the workspace are expressed with these helpers so that
/// conformance tests read like the paper: `geo.log_b(n) + geo.out_blocks(t)`
/// is `O(log_B n + t/B)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry {
    /// Records per disk block (`B`). Must be ≥ 2.
    pub b: usize,
}

impl Geometry {
    /// Create a geometry with block size `b`.
    ///
    /// # Panics
    /// Panics if `b < 2` (the model needs a branching factor of at least 2).
    pub fn new(b: usize) -> Self {
        assert!(b >= 2, "block size must be at least 2");
        Self { b }
    }

    /// `B^2`, the metablock point capacity and the paper's main-memory
    /// working-set assumption.
    #[inline]
    pub fn b2(&self) -> usize {
        self.b * self.b
    }

    /// `B^3`, the capacity of a children-level 3-sided structure (§4).
    #[inline]
    pub fn b3(&self) -> usize {
        self.b * self.b * self.b
    }

    /// `⌈n / B⌉`: blocks needed to hold `n` records — the `t/B` output term.
    #[inline]
    pub fn out_blocks(&self, n: usize) -> usize {
        n.div_ceil(self.b)
    }

    /// `⌈log_B (max(n, 2))⌉`, at least 1 — the `log_B n` search term.
    pub fn log_b(&self, n: usize) -> usize {
        let mut v = 1usize;
        let mut levels = 0usize;
        while v < n.max(2) {
            v = v.saturating_mul(self.b);
            levels += 1;
        }
        levels.max(1)
    }

    /// `⌈log2 (max(n, 2))⌉`, at least 1 — the `log2` terms in the class
    /// bounds.
    pub fn log2(n: usize) -> usize {
        let n = n.max(2) as u64;
        (64 - (n - 1).leading_zeros()) as usize
    }
}

/// Split the index range `0..n` into at most `k` nonempty contiguous ranges
/// of near-equal size (sizes differ by at most one). Used wherever records
/// are spread over pages or slabs evenly: metablock slab grouping, B+-tree
/// leaf packing at partial fill.
pub fn near_equal_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    let groups = k.min(n).max(1);
    let base = n / groups;
    let extra = n % groups;
    let mut out = Vec::with_capacity(groups);
    let mut start = 0usize;
    for g in 0..groups {
        let size = base + usize::from(g < extra);
        out.push((start, start + size));
        start += size;
    }
    debug_assert_eq!(start, n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers() {
        let g = Geometry::new(8);
        assert_eq!(g.b2(), 64);
        assert_eq!(g.b3(), 512);
    }

    #[test]
    fn out_blocks_rounds_up() {
        let g = Geometry::new(10);
        assert_eq!(g.out_blocks(0), 0);
        assert_eq!(g.out_blocks(1), 1);
        assert_eq!(g.out_blocks(10), 1);
        assert_eq!(g.out_blocks(11), 2);
    }

    #[test]
    fn log_b_examples() {
        let g = Geometry::new(10);
        assert_eq!(g.log_b(1), 1);
        assert_eq!(g.log_b(10), 1);
        assert_eq!(g.log_b(11), 2);
        assert_eq!(g.log_b(100), 2);
        assert_eq!(g.log_b(1001), 4);
    }

    #[test]
    fn log2_examples() {
        assert_eq!(Geometry::log2(0), 1);
        assert_eq!(Geometry::log2(2), 1);
        assert_eq!(Geometry::log2(3), 2);
        assert_eq!(Geometry::log2(1024), 10);
        assert_eq!(Geometry::log2(1025), 11);
    }

    #[test]
    fn ranges_are_near_equal_and_cover() {
        let ranges = near_equal_ranges(103, 10);
        assert_eq!(ranges.len(), 10);
        let sizes: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 103);
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
        }
    }

    #[test]
    fn fewer_items_than_ranges() {
        let ranges = near_equal_ranges(3, 10);
        assert_eq!(ranges.len(), 3);
        assert!(ranges.iter().all(|&(s, e)| e - s == 1));
    }
}
