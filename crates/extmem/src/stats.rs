//! I/O accounting.
//!
//! All stores in this crate (and all structures built on them) share an
//! [`IoCounter`]: a cheap, cloneable handle to a pair of monotone counters.
//! Measurements are taken with [`IoCounter::snapshot`] before an operation
//! and [`IoSnapshot::delta`] (or [`IoCounter::since`]) after it.

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;

/// Monotone counters of page transfers.
///
/// `reads` counts disk-to-memory transfers, `writes` memory-to-disk.
/// In the paper's cost model both directions cost one I/O.
#[derive(Default, Debug)]
pub struct IoStats {
    reads: Cell<u64>,
    writes: Cell<u64>,
}

impl IoStats {
    /// Record `n` page reads.
    #[inline]
    pub fn add_reads(&self, n: u64) {
        self.reads.set(self.reads.get() + n);
    }

    /// Record `n` page writes.
    #[inline]
    pub fn add_writes(&self, n: u64) {
        self.writes.set(self.writes.get() + n);
    }

    /// Total page reads so far.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Total page writes so far.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Total page transfers (reads + writes).
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }
}

/// A cloneable handle to shared [`IoStats`].
///
/// Every store constructed from the same counter contributes to the same
/// totals, which is how multi-structure indexes (e.g. the interval manager's
/// B+-tree plus metablock tree) report a single cost per operation.
#[derive(Clone, Default)]
pub struct IoCounter(Rc<IoStats>);

impl IoCounter {
    /// Create a fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` page reads.
    #[inline]
    pub fn add_reads(&self, n: u64) {
        self.0.add_reads(n);
    }

    /// Record `n` page writes.
    #[inline]
    pub fn add_writes(&self, n: u64) {
        self.0.add_writes(n);
    }

    /// Total page reads so far.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.0.reads()
    }

    /// Total page writes so far.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.0.writes()
    }

    /// Total page transfers so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.0.total()
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads(),
            writes: self.writes(),
        }
    }

    /// Transfers performed since `snap` was taken.
    pub fn since(&self, snap: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads() - snap.reads,
            writes: self.writes() - snap.writes,
        }
    }
}

impl fmt::Debug for IoCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoCounter")
            .field("reads", &self.reads())
            .field("writes", &self.writes())
            .finish()
    }
}

/// A point-in-time view of the counters; also used as a delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page reads at snapshot time (or in the delta).
    pub reads: u64,
    /// Page writes at snapshot time (or in the delta).
    pub writes: u64,
}

impl IoSnapshot {
    /// Reads + writes.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference between a later snapshot and this one.
    pub fn delta(&self, later: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: later.reads - self.reads,
            writes: later.writes - self.writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = IoCounter::new();
        c.add_reads(3);
        c.add_writes(2);
        assert_eq!(c.reads(), 3);
        assert_eq!(c.writes(), 2);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn snapshot_delta() {
        let c = IoCounter::new();
        c.add_reads(10);
        let s = c.snapshot();
        c.add_reads(5);
        c.add_writes(1);
        let d = c.since(s);
        assert_eq!(d.reads, 5);
        assert_eq!(d.writes, 1);
        assert_eq!(d.total(), 6);
    }

    #[test]
    fn clones_share_state() {
        let c = IoCounter::new();
        let c2 = c.clone();
        c2.add_writes(7);
        assert_eq!(c.writes(), 7);
    }
}
