//! I/O accounting.
//!
//! All stores in this crate (and all structures built on them) share an
//! [`IoCounter`]: a cheap, cloneable handle to a pair of monotone counters.
//! Measurements are taken with [`IoCounter::snapshot`] before an operation
//! and [`IoSnapshot::delta`] (or [`IoCounter::since`]) after it.
//!
//! Counters are thread-safe so snapshot readers (see the `ccix-serve`
//! crate) can charge I/O from many threads at once. Charges land on
//! per-thread cache-padded stripes and the read side sums them, so the
//! single-threaded totals the perf gates diff are bit-identical to the
//! pre-striping implementation while concurrent readers never contend on
//! one cache line.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Arc;

/// Number of counter stripes. A power of two so stripe assignment is a
/// mask; 16 is comfortably above the reader-thread counts the throughput
/// experiment drives (up to 8) without bloating `IoStats`.
const STRIPES: usize = 16;

/// Round-robin source of stripe ids; each thread claims one on first use.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Relaxed) & (STRIPES - 1);
}

#[inline]
fn stripe_id() -> usize {
    STRIPE.with(|s| *s)
}

/// One cache-line-padded slice of the counters. Padding keeps two reader
/// threads on adjacent stripes from false-sharing a line.
#[repr(align(64))]
#[derive(Debug)]
struct Stripe {
    reads: AtomicU64,
    writes: AtomicU64,
    shunt_reads: AtomicU64,
    shunt_writes: AtomicU64,
}

impl Default for Stripe {
    fn default() -> Self {
        Self {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            shunt_reads: AtomicU64::new(0),
            shunt_writes: AtomicU64::new(0),
        }
    }
}

/// Monotone counters of page transfers.
///
/// `reads` counts disk-to-memory transfers, `writes` memory-to-disk.
/// In the paper's cost model both directions cost one I/O.
///
/// All updates and reads use relaxed atomics: the counters are a cost
/// meter, not a synchronisation primitive. Totals read while other
/// threads are still charging are a momentary view; totals read after
/// the charging threads have been joined are exact.
#[derive(Debug)]
pub struct IoStats {
    stripes: [Stripe; STRIPES],
    shunt: AtomicBool,
}

impl Default for IoStats {
    fn default() -> Self {
        Self {
            stripes: std::array::from_fn(|_| Stripe::default()),
            shunt: AtomicBool::new(false),
        }
    }
}

impl IoStats {
    /// Record `n` page reads.
    #[inline]
    pub fn add_reads(&self, n: u64) {
        let s = &self.stripes[stripe_id()];
        if self.shunt.load(Relaxed) {
            s.shunt_reads.fetch_add(n, Relaxed);
        } else {
            s.reads.fetch_add(n, Relaxed);
        }
    }

    /// Record `n` page writes.
    #[inline]
    pub fn add_writes(&self, n: u64) {
        let s = &self.stripes[stripe_id()];
        if self.shunt.load(Relaxed) {
            s.shunt_writes.fetch_add(n, Relaxed);
        } else {
            s.writes.fetch_add(n, Relaxed);
        }
    }

    /// Total page reads so far.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.stripes.iter().map(|s| s.reads.load(Relaxed)).sum()
    }

    /// Total page writes so far.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.stripes.iter().map(|s| s.writes.load(Relaxed)).sum()
    }

    /// Total page transfers (reads + writes).
    #[inline]
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }
}

/// A cloneable handle to shared [`IoStats`].
///
/// Every store constructed from the same counter contributes to the same
/// totals, which is how multi-structure indexes (e.g. the interval manager's
/// B+-tree plus metablock tree) report a single cost per operation.
///
/// The handle is `Send + Sync`; concurrent snapshot readers each charge
/// their own epoch's counter (see `TypedStore::fork`), so the live
/// writer's accounting — including its shunt — is never polluted by
/// reader traffic.
#[derive(Clone, Default)]
pub struct IoCounter(Arc<IoStats>);

impl IoCounter {
    /// Create a fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` page reads.
    #[inline]
    pub fn add_reads(&self, n: u64) {
        self.0.add_reads(n);
    }

    /// Record `n` page writes.
    #[inline]
    pub fn add_writes(&self, n: u64) {
        self.0.add_writes(n);
    }

    /// Total page reads so far.
    #[inline]
    pub fn reads(&self) -> u64 {
        self.0.reads()
    }

    /// Total page writes so far.
    #[inline]
    pub fn writes(&self) -> u64 {
        self.0.writes()
    }

    /// Total page transfers so far.
    #[inline]
    pub fn total(&self) -> u64 {
        self.0.total()
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads(),
            writes: self.writes(),
        }
    }

    /// Transfers performed since `snap` was taken.
    pub fn since(&self, snap: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads() - snap.reads,
            writes: self.writes() - snap.writes,
        }
    }

    /// Start **shunting**: until [`IoCounter::end_shunt`], every charge on
    /// this counter (through *any* clone — all stores sharing it) is
    /// diverted to a side meter instead of the monotone totals.
    ///
    /// This is how an incremental reorganisation
    /// (`Tuning::reorg_pages_per_op`) turns a stop-the-world rebuild into a
    /// debt: the rebuild executes with its charges shunted, and the caller
    /// bleeds the returned amounts back into the real counters a bounded
    /// number per subsequent operation. Totals are conserved exactly; only
    /// *when* each transfer is billed changes.
    ///
    /// Shunting is a single-writer affair: the mutating thread that owns
    /// the structure begins and ends the shunt around its own synchronous
    /// rebuild. Snapshot readers are unaffected because epochs fork onto
    /// fresh counters.
    ///
    /// # Panics
    /// Panics if a shunt is already active (reorganisations are synchronous
    /// and never nest their own shunts — the caller checks
    /// [`IoCounter::shunt_active`] first).
    pub fn begin_shunt(&self) {
        let was = self.0.shunt.swap(true, Relaxed);
        assert!(!was, "nested I/O shunt");
    }

    /// Stop shunting and return the `(reads, writes)` diverted since
    /// [`IoCounter::begin_shunt`]. The side meter is cleared.
    pub fn end_shunt(&self) -> (u64, u64) {
        let was = self.0.shunt.swap(false, Relaxed);
        assert!(was, "end_shunt without begin_shunt");
        let mut r = 0;
        let mut w = 0;
        for s in &self.0.stripes {
            r += s.shunt_reads.swap(0, Relaxed);
            w += s.shunt_writes.swap(0, Relaxed);
        }
        (r, w)
    }

    /// True while charges are being diverted to the side meter.
    pub fn shunt_active(&self) -> bool {
        self.0.shunt.load(Relaxed)
    }
}

impl fmt::Debug for IoCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IoCounter")
            .field("reads", &self.reads())
            .field("writes", &self.writes())
            .finish()
    }
}

/// A point-in-time view of the counters; also used as a delta.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page reads at snapshot time (or in the delta).
    pub reads: u64,
    /// Page writes at snapshot time (or in the delta).
    pub writes: u64,
}

impl IoSnapshot {
    /// Reads + writes.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Difference between a later snapshot and this one.
    pub fn delta(&self, later: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: later.reads - self.reads,
            writes: later.writes - self.writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = IoCounter::new();
        c.add_reads(3);
        c.add_writes(2);
        assert_eq!(c.reads(), 3);
        assert_eq!(c.writes(), 2);
        assert_eq!(c.total(), 5);
    }

    #[test]
    fn snapshot_delta() {
        let c = IoCounter::new();
        c.add_reads(10);
        let s = c.snapshot();
        c.add_reads(5);
        c.add_writes(1);
        let d = c.since(s);
        assert_eq!(d.reads, 5);
        assert_eq!(d.writes, 1);
        assert_eq!(d.total(), 6);
    }

    #[test]
    fn clones_share_state() {
        let c = IoCounter::new();
        let c2 = c.clone();
        c2.add_writes(7);
        assert_eq!(c.writes(), 7);
    }

    #[test]
    fn shunt_diverts_and_conserves() {
        let c = IoCounter::new();
        let c2 = c.clone();
        c.add_reads(2);
        c.begin_shunt();
        assert!(c2.shunt_active(), "shunt state is shared across clones");
        c.add_reads(5);
        c2.add_writes(3); // charges through a clone are shunted too
        assert_eq!(c.reads(), 2, "shunted charges bypass the totals");
        assert_eq!(c.writes(), 0);
        let (r, w) = c.end_shunt();
        assert_eq!((r, w), (5, 3));
        assert!(!c.shunt_active());
        c.add_reads(r);
        c.add_writes(w);
        assert_eq!((c.reads(), c.writes()), (7, 3), "bled debt restores totals");
        // The side meter was cleared.
        c.begin_shunt();
        assert_eq!(c.end_shunt(), (0, 0));
    }

    #[test]
    fn cross_thread_charges_sum_exactly() {
        let c = IoCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.add_reads(1);
                        h.add_writes(2);
                    }
                });
            }
        });
        assert_eq!(c.reads(), 4000);
        assert_eq!(c.writes(), 8000);
    }
}
