//! Wall-clock benchmarks for every structure in the workspace.
//!
//! These complement the I/O-count experiments (`src/bin/exp_*`): the
//! paper's claims are about page transfers, which the experiments measure
//! exactly; these benchmarks confirm the in-memory simulator itself is fast
//! enough that the I/O model, not CPU time, dominates realistic use.
//!
//! The harness is a minimal `harness = false` timer (the workspace builds
//! with no external crates): each benchmark is warmed up, then run in
//! batches until ~0.5 s has elapsed, and the per-iteration mean over the
//! fastest half of batches is reported. Run with
//! `cargo bench -p ccix-bench`; pass a substring to filter by name.

use std::time::{Duration, Instant};

use ccix_bench::workloads;
use ccix_bptree::{BPlusTree, Entry};
use ccix_class::{ClassIndex, RakeClassIndex, RangeTreeClassIndex};
use ccix_core::{MetablockTree, ThreeSidedTree};
use ccix_extmem::{Disk, Geometry, IoCounter};
use ccix_interval::IndexBuilder;
use ccix_pst::{ExternalPst, InCorePst};

const N: usize = 50_000;
const B: usize = 64;

/// Minimal bench runner: batched timing with a warm-up pass.
struct Harness {
    filter: Option<String>,
    budget: Duration,
}

impl Harness {
    fn from_args() -> Self {
        // Cargo's bench runner passes `--bench`; anything else is a filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self {
            filter,
            budget: Duration::from_millis(500),
        }
    }

    /// Time `iter` (one logical iteration per call) and print ns/iter.
    fn bench(&self, name: &str, mut iter: impl FnMut()) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        // Warm-up and batch sizing: grow the batch until it takes ≥ 1 ms.
        let mut batch = 1u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                iter();
            }
            if t0.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.len() < 4 {
            let t0 = Instant::now();
            for _ in 0..batch {
                iter();
            }
            samples.push(t0.elapsed().as_nanos() as f64 / f64::from(batch));
            if samples.len() >= 256 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let half = &samples[..samples.len().div_ceil(2)];
        let mean = half.iter().sum::<f64>() / half.len() as f64;
        println!(
            "bench {name:<40} {mean:>14.0} ns/iter ({} batches of {batch})",
            samples.len()
        );
    }

    /// Time `routine` against fresh state from `setup` (criterion's
    /// `iter_batched`): setup runs untimed before every sample, so
    /// mutating routines (inserts) are always measured against the same
    /// starting structure instead of one that grows across samples.
    fn bench_batched<T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(&mut T),
    ) {
        if let Some(f) = &self.filter {
            if !name.contains(f.as_str()) {
                return;
            }
        }
        let mut state = setup();
        routine(&mut state); // warm-up
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.len() < 4 {
            let mut state = setup();
            let t0 = Instant::now();
            routine(&mut state);
            samples.push(t0.elapsed().as_nanos() as f64);
            if samples.len() >= 64 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let half = &samples[..samples.len().div_ceil(2)];
        let mean = half.iter().sum::<f64>() / half.len() as f64;
        println!(
            "bench {name:<40} {mean:>14.0} ns/iter ({} fresh-state samples)",
            samples.len()
        );
    }
}

fn bench_bptree(h: &Harness) {
    let counter = IoCounter::new();
    let mut disk = Disk::new(1024, counter);
    let entries: Vec<Entry> = (0..N as i64).map(|k| Entry::new(k, k as u64)).collect();
    let tree = BPlusTree::bulk_load(&mut disk, &entries);
    let mut r = workloads::rng(1);
    h.bench("bptree/range_2000", || {
        let a = r.gen_range(0..(N as i64 - 2_000));
        let _ = tree.range(&disk, a, a + 2_000);
    });
    h.bench_batched(
        "bptree/insert_100",
        || {
            let counter = IoCounter::new();
            let mut disk = Disk::new(1024, counter);
            let tree = BPlusTree::bulk_load(&mut disk, &entries);
            (disk, tree)
        },
        |(disk, tree)| {
            let mut k = 0i64;
            for _ in 0..100 {
                tree.insert(disk, k % N as i64, (N as i64 + k) as u64);
                k += 7;
            }
        },
    );
}

fn bench_metablock(h: &Harness) {
    let geo = Geometry::new(B);
    let ivs = workloads::uniform_intervals(N, 3, 4 * N as i64, 2_000);
    let pts = workloads::interval_points(&ivs);
    let tree = MetablockTree::build(geo, IoCounter::new(), pts.clone());
    let mut r = workloads::rng(2);
    h.bench("metablock/diagonal_query", || {
        let _ = tree.query(r.gen_range(0..4 * N as i64));
    });
    h.bench("metablock/build_50k", || {
        let _ = MetablockTree::build(geo, IoCounter::new(), pts.clone());
    });
    let mut id = 10_000_000u64;
    h.bench_batched(
        "metablock/insert_100",
        || MetablockTree::build(geo, IoCounter::new(), pts.clone()),
        |tree| {
            for _ in 0..100 {
                let lo = r.gen_range(0..4 * N as i64);
                id += 1;
                tree.insert(ccix_extmem::Point::new(lo, lo + 100, id));
            }
        },
    );
}

fn bench_threesided(h: &Harness) {
    let geo = Geometry::new(B);
    let pts = workloads::uniform_points(N, 5, 1_000_000);
    let tree = ThreeSidedTree::build(geo, IoCounter::new(), pts);
    let mut r = workloads::rng(6);
    h.bench("threesided/query", || {
        let a = r.gen_range(0..900_000i64);
        let _ = tree.query(a, a + 100_000, r.gen_range(0..1_000_000i64));
    });
}

fn bench_pst(h: &Harness) {
    let geo = Geometry::new(B);
    let pts = workloads::uniform_points(N, 7, 1_000_000);
    let ext = ExternalPst::build(geo, IoCounter::new(), pts.clone());
    let incore = InCorePst::build(pts);
    let mut r = workloads::rng(8);
    h.bench("pst/external_query", || {
        let a = r.gen_range(0..900_000i64);
        let _ = ext.query(a, a + 100_000, r.gen_range(0..1_000_000i64));
    });
    h.bench("pst/incore_query", || {
        let a = r.gen_range(0..900_000i64);
        let _ = incore.query(a, a + 100_000, r.gen_range(0..1_000_000i64));
    });
}

fn bench_interval(h: &Harness) {
    let geo = Geometry::new(B);
    let ivs = workloads::uniform_intervals(N, 9, 4 * N as i64, 2_000);
    let idx = IndexBuilder::new(geo).bulk(IoCounter::new(), &ivs);
    let mut r = workloads::rng(10);
    h.bench("interval/stabbing", || {
        let _ = idx.stabbing(r.gen_range(0..4 * N as i64));
    });
    h.bench("interval/intersecting", || {
        let q = r.gen_range(0..4 * N as i64);
        let _ = idx.intersecting(q, q + 1_000);
    });
}

fn bench_class(h: &Harness) {
    let geo = Geometry::new(16);
    let hier = workloads::hierarchy(workloads::HierarchyShape::Balanced, 255, 1);
    let objects = workloads::uniform_objects(&hier, N, 11, 1_000_000);
    let mut rake = RakeClassIndex::new(hier.clone(), geo, IoCounter::new());
    let mut rtree = RangeTreeClassIndex::new(hier.clone(), geo, IoCounter::new());
    for o in &objects {
        rake.insert(*o);
        rtree.insert(*o);
    }
    let mut r = workloads::rng(12);
    h.bench("class/rake_query", || {
        let class = r.gen_range(0..hier.len());
        let a = r.gen_range(0..900_000i64);
        let _ = rake.query(class, a, a + 50_000);
    });
    h.bench("class/rangetree_query", || {
        let class = r.gen_range(0..hier.len());
        let a = r.gen_range(0..900_000i64);
        let _ = rtree.query(class, a, a + 50_000);
    });
}

fn main() {
    let h = Harness::from_args();
    bench_bptree(&h);
    bench_metablock(&h);
    bench_threesided(&h);
    bench_pst(&h);
    bench_interval(&h);
    bench_class(&h);
}
