//! Criterion wall-clock benchmarks for every structure in the workspace.
//!
//! These complement the I/O-count experiments (`src/bin/exp_*`): the
//! paper's claims are about page transfers, which the experiments measure
//! exactly; these benchmarks confirm the in-memory simulator itself is fast
//! enough that the I/O model, not CPU time, dominates realistic use.

use std::time::Duration;

use ccix_bench::workloads;
use ccix_bptree::{BPlusTree, Entry};
use ccix_class::{ClassIndex, RakeClassIndex, RangeTreeClassIndex};
use ccix_core::{MetablockTree, ThreeSidedTree};
use ccix_extmem::{Disk, Geometry, IoCounter};
use ccix_interval::IntervalIndex;
use ccix_pst::{ExternalPst, InCorePst};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::Rng;

const N: usize = 50_000;
const B: usize = 64;

fn bench_bptree(c: &mut Criterion) {
    let mut group = c.benchmark_group("bptree");
    let counter = IoCounter::new();
    let mut disk = Disk::new(1024, counter);
    let entries: Vec<Entry> = (0..N as i64).map(|k| Entry::new(k, k as u64)).collect();
    let tree = BPlusTree::bulk_load(&mut disk, &entries);
    let mut r = workloads::rng(1);
    group.bench_function("range_2000", |bench| {
        bench.iter(|| {
            let a = r.gen_range(0..(N as i64 - 2_000));
            tree.range(&disk, a, a + 2_000)
        })
    });
    group.bench_function("insert", |bench| {
        bench.iter_batched(
            || {
                let counter = IoCounter::new();
                let mut disk = Disk::new(1024, counter);
                let tree = BPlusTree::bulk_load(&mut disk, &entries);
                (disk, tree, 0i64)
            },
            |(mut disk, mut tree, mut k)| {
                for _ in 0..100 {
                    tree.insert(&mut disk, k % N as i64, (N as i64 + k) as u64);
                    k += 7;
                }
                (disk, tree)
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_metablock(c: &mut Criterion) {
    let mut group = c.benchmark_group("metablock");
    let geo = Geometry::new(B);
    let ivs = workloads::uniform_intervals(N, 3, 4 * N as i64, 2_000);
    let pts = workloads::interval_points(&ivs);
    let tree = MetablockTree::build(geo, IoCounter::new(), pts.clone());
    let mut r = workloads::rng(2);
    group.bench_function("diagonal_query", |bench| {
        bench.iter(|| tree.query(r.gen_range(0..4 * N as i64)))
    });
    group.bench_function("build_50k", |bench| {
        bench.iter_batched(
            || pts.clone(),
            |pts| MetablockTree::build(geo, IoCounter::new(), pts),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("insert_100", |bench| {
        let mut id = 10_000_000u64;
        bench.iter_batched(
            || MetablockTree::build(geo, IoCounter::new(), pts.clone()),
            |mut tree| {
                for _ in 0..100 {
                    let lo = r.gen_range(0..4 * N as i64);
                    id += 1;
                    tree.insert(ccix_extmem::Point::new(lo, lo + 100, id));
                }
                tree
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_threesided(c: &mut Criterion) {
    let mut group = c.benchmark_group("threesided");
    let geo = Geometry::new(B);
    let pts = workloads::uniform_points(N, 5, 1_000_000);
    let tree = ThreeSidedTree::build(geo, IoCounter::new(), pts);
    let mut r = workloads::rng(6);
    group.bench_function("query", |bench| {
        bench.iter(|| {
            let a = r.gen_range(0..900_000i64);
            tree.query(a, a + 100_000, r.gen_range(0..1_000_000i64))
        })
    });
    group.finish();
}

fn bench_pst(c: &mut Criterion) {
    let mut group = c.benchmark_group("pst");
    let geo = Geometry::new(B);
    let pts = workloads::uniform_points(N, 7, 1_000_000);
    let ext = ExternalPst::build(geo, IoCounter::new(), pts.clone());
    let incore = InCorePst::build(pts);
    let mut r = workloads::rng(8);
    group.bench_function("external_query", |bench| {
        bench.iter(|| {
            let a = r.gen_range(0..900_000i64);
            ext.query(a, a + 100_000, r.gen_range(0..1_000_000i64))
        })
    });
    group.bench_function("incore_query", |bench| {
        bench.iter(|| {
            let a = r.gen_range(0..900_000i64);
            incore.query(a, a + 100_000, r.gen_range(0..1_000_000i64))
        })
    });
    group.finish();
}

fn bench_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval");
    let geo = Geometry::new(B);
    let ivs = workloads::uniform_intervals(N, 9, 4 * N as i64, 2_000);
    let idx = IntervalIndex::build(geo, IoCounter::new(), &ivs);
    let mut r = workloads::rng(10);
    group.bench_function("stabbing", |bench| {
        bench.iter(|| idx.stabbing(r.gen_range(0..4 * N as i64)))
    });
    group.bench_function("intersecting", |bench| {
        bench.iter(|| {
            let q = r.gen_range(0..4 * N as i64);
            idx.intersecting(q, q + 1_000)
        })
    });
    group.finish();
}

fn bench_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("class");
    let geo = Geometry::new(16);
    let h = workloads::hierarchy(workloads::HierarchyShape::Balanced, 255, 1);
    let objects = workloads::uniform_objects(&h, N, 11, 1_000_000);
    let mut rake = RakeClassIndex::new(h.clone(), geo, IoCounter::new());
    let mut rtree = RangeTreeClassIndex::new(h.clone(), geo, IoCounter::new());
    for o in &objects {
        rake.insert(*o);
        rtree.insert(*o);
    }
    let mut r = workloads::rng(12);
    group.bench_function("rake_query", |bench| {
        bench.iter(|| {
            let class = r.gen_range(0..h.len());
            let a = r.gen_range(0..900_000i64);
            rake.query(class, a, a + 50_000)
        })
    });
    group.bench_function("rangetree_query", |bench| {
        bench.iter(|| {
            let class = r.gen_range(0..h.len());
            let a = r.gen_range(0..900_000i64);
            rtree.query(class, a, a + 50_000)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bptree, bench_metablock, bench_threesided, bench_pst, bench_interval, bench_class
}
criterion_main!(benches);
