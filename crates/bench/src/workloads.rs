//! Deterministic workload generators for experiments and benches.
//!
//! The generators themselves live in [`ccix_testkit::workloads`] so the
//! differential test suites and the bench harness draw from the exact same
//! input families; this module re-exports them and adds the seeded-RNG
//! helper the experiment drivers use for query streams.

use ccix_testkit::DetRng;

pub use ccix_testkit::workloads::{
    adversarial_intervals, clustered_points, correlated_flood, hierarchy, hot_shard_splits,
    interval_points, mixed_interval_flood, mixed_object_flood, mixed_point_flood, nested_intervals,
    skewed_flood, skewed_intervals, skewed_objects, staircase_points, uniform_flood,
    uniform_intervals, uniform_objects, uniform_points, zipf_shard_flood, zipf_shard_intervals,
    HierarchyShape, IntervalOp, ObjectOp, PointOp,
};

/// A seeded RNG (experiments are fully reproducible).
pub fn rng(seed: u64) -> DetRng {
    DetRng::new(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccix_extmem::Point;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            uniform_intervals(10, 7, 100, 10),
            uniform_intervals(10, 7, 100, 10)
        );
        assert_eq!(uniform_points(5, 1, 50), uniform_points(5, 1, 50));
    }

    #[test]
    fn staircase_shape() {
        let pts = staircase_points(4);
        assert_eq!(pts[3], Point::new(3, 4, 3));
    }

    #[test]
    fn hierarchy_shapes() {
        let p = hierarchy(HierarchyShape::Path, 5, 0);
        assert_eq!(p.max_depth(), 5);
        let s = hierarchy(HierarchyShape::Star, 5, 0);
        assert_eq!(s.max_depth(), 2);
        let b = hierarchy(HierarchyShape::Balanced, 7, 0);
        assert_eq!(b.max_depth(), 3);
    }
}
