//! Deterministic workload generators shared by experiments and Criterion
//! benches.

use ccix_class::{Hierarchy, Object};
use ccix_extmem::Point;
use ccix_interval::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG (experiments are fully reproducible).
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Uniform random intervals: left endpoints over `[0, range)`, lengths over
/// `[0, max_len)`.
pub fn uniform_intervals(n: usize, seed: u64, range: i64, max_len: i64) -> Vec<Interval> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            let lo = r.gen_range(0..range);
            let len = r.gen_range(0..max_len);
            Interval::new(lo, lo + len, i as u64)
        })
        .collect()
}

/// Nested intervals around a common centre — every stabbing query near the
/// centre returns a long prefix (the high-overlap regime).
pub fn nested_intervals(n: usize, centre: i64) -> Vec<Interval> {
    (0..n)
        .map(|i| Interval::new(centre - i as i64, centre + i as i64, i as u64))
        .collect()
}

/// The Proposition 3.3 staircase: `(x, x+1)` for `x ∈ [0, n)`.
pub fn staircase_points(n: usize) -> Vec<Point> {
    (0..n as i64).map(|x| Point::new(x, x + 1, x as u64)).collect()
}

/// Intervals as diagonal points `(lo, hi)`.
pub fn interval_points(intervals: &[Interval]) -> Vec<Point> {
    intervals
        .iter()
        .map(|iv| Point::new(iv.lo, iv.hi, iv.id))
        .collect()
}

/// Uniform random points in `[0, range)²`.
pub fn uniform_points(n: usize, seed: u64, range: i64) -> Vec<Point> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| Point::new(r.gen_range(0..range), r.gen_range(0..range), i as u64))
        .collect()
}

/// Hierarchy shapes used by the class experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierarchyShape {
    /// Complete binary tree.
    Balanced,
    /// A single chain (the degenerate case of Lemma 4.3).
    Path,
    /// One root, `c − 1` leaf children (the Theorem 2.8 shape).
    Star,
    /// Random attachment (each class picks a uniform earlier parent).
    Random,
}

/// Build a hierarchy of (about) `c` classes with the given shape.
pub fn hierarchy(shape: HierarchyShape, c: usize, seed: u64) -> Hierarchy {
    let mut r = rng(seed);
    let parents: Vec<Option<usize>> = (0..c)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some(match shape {
                    HierarchyShape::Balanced => (i - 1) / 2,
                    HierarchyShape::Path => i - 1,
                    HierarchyShape::Star => 0,
                    HierarchyShape::Random => r.gen_range(0..i),
                })
            }
        })
        .collect();
    Hierarchy::from_parents(&parents)
}

/// Uniform objects over a hierarchy: random class, attribute in
/// `[0, attr_range)`.
pub fn uniform_objects(h: &Hierarchy, n: usize, seed: u64, attr_range: i64) -> Vec<Object> {
    let mut r = rng(seed);
    (0..n)
        .map(|i| {
            Object::new(
                r.gen_range(0..h.len()),
                r.gen_range(0..attr_range),
                i as u64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            uniform_intervals(10, 7, 100, 10),
            uniform_intervals(10, 7, 100, 10)
        );
        assert_eq!(uniform_points(5, 1, 50), uniform_points(5, 1, 50));
    }

    #[test]
    fn staircase_shape() {
        let pts = staircase_points(4);
        assert_eq!(pts[3], Point::new(3, 4, 3));
    }

    #[test]
    fn hierarchy_shapes() {
        let p = hierarchy(HierarchyShape::Path, 5, 0);
        assert_eq!(p.max_depth(), 5);
        let s = hierarchy(HierarchyShape::Star, 5, 0);
        assert_eq!(s.max_depth(), 2);
        let b = hierarchy(HierarchyShape::Balanced, 7, 0);
        assert_eq!(b.max_depth(), 3);
    }
}
