//! # `ccix-bench` — the experiment harness
//!
//! One experiment per reproducible claim in the paper (see `DESIGN.md` §5
//! and `EXPERIMENTS.md`): each `experiments::e*` function generates its
//! workload, runs the structure under exact I/O accounting, and returns
//! tables of measured-vs-bound figures. Binaries under `src/bin/` are thin
//! wrappers (`exp_metablock_query`, …); `exp_all` regenerates the full
//! report.
//!
//! Wall-clock companions live in `benches/structures.rs` (Criterion).

pub mod experiments;
pub mod report;
pub mod workloads;
