//! Experiment binary: see `ccix_bench::experiments::es_shard`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_shard_baseline.json` (the sharded fan-out baseline — aggregate
//! I/O diffed exactly, wall clock gated by absolute smoke bounds):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_shard -- --json > BENCH_shard_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::es_shard();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
