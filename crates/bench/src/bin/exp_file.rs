//! Experiment binary: see `ccix_bench::experiments::ef_file`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_file_baseline.json` (the file-backend baseline — wall-clock
//! only, gated by absolute smoke ceilings ~10× the measured dev-box
//! numbers; the *exact-I/O* equivalence of the two backends is enforced by
//! the `backends` differential suite, not here):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_file -- --json > BENCH_file_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::ef_file();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
