//! Experiment binary: see `ccix_bench::experiments::e4_metablock_insert`.
fn main() {
    for table in ccix_bench::experiments::e4_metablock_insert() {
        table.print();
    }
}
