//! Experiment binary: see `ccix_bench::experiments::e8_tessellation`.
fn main() {
    for table in ccix_bench::experiments::e8_tessellation() {
        table.print();
    }
}
