//! Experiment binary: see `ccix_bench::experiments::e2_corner_structure`.
fn main() {
    for table in ccix_bench::experiments::e2_corner_structure() {
        table.print();
    }
}
