//! Experiment binary: see `ccix_bench::experiments::e7_pst`.
fn main() {
    for table in ccix_bench::experiments::e7_pst() {
        table.print();
    }
}
