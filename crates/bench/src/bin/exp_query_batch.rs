//! Experiment binary: see `ccix_bench::experiments::eqb_query_batch`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_query_baseline.json` (the batched-read perf baseline):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_query_batch -- --json > BENCH_query_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::eqb_query_batch();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
