//! Experiment binary: see `ccix_bench::experiments::e10_class_strategies`.
fn main() {
    for table in ccix_bench::experiments::e10_class_strategies() {
        table.print();
    }
}
