//! Experiment binary: see `ccix_bench::experiments::e11_structure_shape`.
fn main() {
    for table in ccix_bench::experiments::e11_structure_shape() {
        table.print();
    }
}
