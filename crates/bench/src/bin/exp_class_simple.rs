//! Experiment binary: see `ccix_bench::experiments::e5_class_simple`.
fn main() {
    for table in ccix_bench::experiments::e5_class_simple() {
        table.print();
    }
}
