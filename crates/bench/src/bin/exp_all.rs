//! Run the full experiment suite (E0–E12).
//!
//! `--markdown` emits the Markdown used to regenerate `EXPERIMENTS.md`.
fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    for table in ccix_bench::experiments::all() {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            table.print();
        }
    }
}
