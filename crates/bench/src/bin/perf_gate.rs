//! CI perf gate: diff two `exp_interval --json` outputs and fail on any
//! I/O or space regression.
//!
//! The workspace's I/O counts are bit-reproducible (seeded workloads, exact
//! counters), so this is an *exact* comparison, not a flaky timing gate: a
//! rise of more than 5% in any gated column on any (B, n) row is a real
//! algorithmic regression. On top of the relative diff, the n=500k row must
//! satisfy the absolute budgets the write-path rework ships with: insert
//! ≤ 15 I/Os amortised, stabbing ≤ 15.8 I/Os, index pages ≤ 4× the
//! heap-file scan.
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_interval -- --json > new.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_baseline.json new.json
//! ```
//!
//! Std-only (the workspace has no registry access): the JSON reader below
//! understands exactly the subset `report::tables_to_json` emits — arrays,
//! objects, strings and numbers — and the tables carry all cells as strings.

use std::process::ExitCode;

/// Columns gated relative to the baseline (lower is better).
const GATED_COLUMNS: &[&str] = &["index q I/O", "index ins I/O", "index pages"];
/// Relative headroom before a rise counts as a regression.
const TOLERANCE_PCT: f64 = 5.0;
/// Absolute budgets for the n=500000 row: (column, bound).
const ABSOLUTE_BUDGETS: &[(&str, f64)] = &[("index ins I/O", 15.0), ("index q I/O", 15.8)];
/// Space budget: index pages ≤ this multiple of scan pages, at n=500000.
const SPACE_FACTOR: f64 = 4.0;

// ---- minimal JSON value ---------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    String(String),
    Number(f64),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            _ => &[],
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::String(s) => s,
            _ => "",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.bytes.get(self.pos) {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("malformed \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("nonempty rest");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

// ---- table extraction -----------------------------------------------------

/// One experiment table: headers plus rows keyed by the (B, n) columns.
struct GateTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl GateTable {
    fn column(&self, name: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == name)
    }

    fn cell(&self, row: &[String], name: &str) -> Result<f64, String> {
        let idx = self
            .column(name)
            .ok_or_else(|| format!("column {name:?} missing"))?;
        let raw = row.get(idx).map(String::as_str).unwrap_or("");
        raw.trim_end_matches('x')
            .parse::<f64>()
            .map_err(|_| format!("column {name:?} holds non-numeric cell {raw:?}"))
    }

    fn key(&self, row: &[String]) -> (String, String) {
        let b = self.column("B").and_then(|i| row.get(i)).cloned();
        let n = self.column("n").and_then(|i| row.get(i)).cloned();
        (b.unwrap_or_default(), n.unwrap_or_default())
    }
}

/// Load the E9 table from a `tables_to_json` file.
fn load_e9(path: &str) -> Result<GateTable, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut parser = Parser::new(&text);
    let root = parser.value()?;
    let table = root
        .as_array()
        .iter()
        .find(|t| t.get("title").is_some_and(|v| v.as_str().starts_with("E9")))
        .ok_or_else(|| format!("{path}: no table titled E9…"))?;
    let headers: Vec<String> = table
        .get("headers")
        .map(|h| {
            h.as_array()
                .iter()
                .map(|c| c.as_str().to_string())
                .collect()
        })
        .unwrap_or_default();
    let rows: Vec<Vec<String>> = table
        .get("rows")
        .map(|r| {
            r.as_array()
                .iter()
                .map(|row| {
                    row.as_array()
                        .iter()
                        .map(|c| c.as_str().to_string())
                        .collect()
                })
                .collect()
        })
        .unwrap_or_default();
    if headers.is_empty() || rows.is_empty() {
        return Err(format!("{path}: E9 table is empty"));
    }
    Ok(GateTable { headers, rows })
}

fn run(baseline_path: &str, candidate_path: &str) -> Result<Vec<String>, String> {
    let baseline = load_e9(baseline_path)?;
    let candidate = load_e9(candidate_path)?;
    let mut failures = Vec::new();

    // Relative gate: every baseline row must still exist and must not have
    // regressed in any gated column.
    for base_row in &baseline.rows {
        let key = baseline.key(base_row);
        let Some(cand_row) = candidate.rows.iter().find(|r| candidate.key(r) == key) else {
            failures.push(format!("row (B={}, n={}) disappeared", key.0, key.1));
            continue;
        };
        for &col in GATED_COLUMNS {
            let base = baseline.cell(base_row, col)?;
            let cand = candidate.cell(cand_row, col)?;
            let limit = base * (1.0 + TOLERANCE_PCT / 100.0);
            if cand > limit {
                failures.push(format!(
                    "(B={}, n={}) {col}: {cand} > {base} +{TOLERANCE_PCT}% (limit {limit:.2})",
                    key.0, key.1
                ));
            }
        }
    }

    // Absolute gate on the largest row.
    let Some(big) = candidate
        .rows
        .iter()
        .find(|r| candidate.key(r).1 == "500000")
    else {
        return Err("candidate has no n=500000 row".into());
    };
    for &(col, bound) in ABSOLUTE_BUDGETS {
        let v = candidate.cell(big, col)?;
        if v > bound {
            failures.push(format!("n=500000 {col}: {v} > absolute budget {bound}"));
        }
    }
    let pages = candidate.cell(big, "index pages")?;
    let scan = candidate.cell(big, "scan pages")?;
    if pages > SPACE_FACTOR * scan {
        failures.push(format!(
            "n=500000 index pages: {pages} > {SPACE_FACTOR}× scan pages ({scan})"
        ));
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, candidate] = args.as_slice() else {
        eprintln!("usage: perf_gate <baseline.json> <candidate.json>");
        return ExitCode::from(2);
    };
    match run(baseline, candidate) {
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::from(2)
        }
        Ok(failures) if failures.is_empty() => {
            println!("perf_gate: OK — no I/O or space regression vs {baseline}");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("perf_gate: {} regression(s) vs {baseline}:", failures.len());
            for f in &failures {
                eprintln!("  - {f}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_json() {
        let text = r#"[{"title": "E9 — test", "claim": "c", "headers": ["B", "n", "index q I/O", "index ins I/O", "index pages", "scan pages"], "rows": [["32", "500000", "15.8", "11.0", "61170", "15625"]]}]"#;
        let mut p = Parser::new(text);
        let v = p.value().expect("parses");
        let t = v.as_array()[0].get("title").unwrap().as_str().to_string();
        assert!(t.starts_with("E9"));
    }

    #[test]
    fn regression_detected_and_tolerance_respected() {
        let dir = std::env::temp_dir().join("ccix_perf_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, q: &str, ins: &str, pages: &str| {
            let path = dir.join(name);
            let body = format!(
                r#"[{{"title": "E9 — t", "claim": "c", "headers": ["B", "n", "index q I/O", "index ins I/O", "index pages", "scan pages"], "rows": [["32", "500000", {q:?}, {ins:?}, {pages:?}, "15625"]]}}]"#
            );
            std::fs::write(&path, body).unwrap();
            path.to_str().unwrap().to_string()
        };
        let base = mk("base.json", "15.8", "11.0", "61170");
        let same = mk("same.json", "15.8", "11.0", "61170");
        let within = mk("within.json", "15.8", "11.3", "62000");
        let worse = mk("worse.json", "15.8", "12.0", "61170");
        let over_budget = mk("over.json", "15.8", "11.0", "64000");
        assert!(run(&base, &same).unwrap().is_empty());
        assert!(run(&base, &within).unwrap().is_empty(), "5% headroom");
        assert_eq!(run(&base, &worse).unwrap().len(), 1, "relative gate");
        assert_eq!(
            run(&base, &over_budget).unwrap().len(),
            1,
            "absolute 4x gate"
        );
    }
}
