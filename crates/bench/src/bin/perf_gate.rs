//! CI perf gate: diff two experiment `--json` outputs and fail on any I/O,
//! space or wall-clock-budget regression.
//!
//! The workspace's I/O counts are bit-reproducible (seeded workloads, exact
//! counters), so the I/O comparison is *exact*, not a flaky timing gate: a
//! rise of more than 5% in any gated column on any keyed row is a real
//! algorithmic regression. Two experiment tables are understood, each with
//! its own absolute budgets; a run gates whichever of them its baseline
//! file contains:
//!
//! * **E9** (`exp_interval --json`, baseline `BENCH_baseline.json`) — the
//!   n=500k row must satisfy the read/write-path budgets: stabbing ≤ 12
//!   I/Os (PR 3's pinned/packed read path), insert ≤ 15 I/Os amortised,
//!   index pages ≤ 4× the heap-file scan.
//! * **EQB** (`exp_query_batch --json`, baseline
//!   `BENCH_query_baseline.json`) — the batched engine's budgets at n=500k,
//!   B=32: uniform single-query ≤ 12 I/Os, adversarial-correlated flood
//!   ≤ 6 I/Os amortised at batch = 64; plus a generous wall-clock *smoke*
//!   ceiling on the corner-structure build (EQB-build — absolute only,
//!   timings are not diffed).
//! * **EB** (`exp_build --json`, baseline `BENCH_build_baseline.json`) —
//!   the merge-based rebuild pipeline's wall-clock table (static build +
//!   rebuild-heavy insert flood, 1 thread and max threads). Build I/O is
//!   gated exactly like any count (parallel planning must not change it);
//!   the wall-clock cells get variance-tolerant absolute ceilings only,
//!   sized ~10× the measured dev-box numbers (see docs/tuning.md for how
//!   they were chosen).
//! * **ED** (`exp_delete --json`, baseline `BENCH_delete_baseline.json`) —
//!   the tombstone delete path: serial and batched delete floods, a mixed
//!   insert/delete/query flood, and a drain to 10% occupancy. Absolute
//!   budgets: delete-flood amortised ≤ 15 I/Os (the E9 *insert* budget —
//!   deletes ride the insert machinery), batched ≤ 10, post-flood stabbing
//!   ≤ 12 (tombstone-aware live counts skip fully-dead pages), drained
//!   pages ≤ 7000 (the occupancy shrink), plus a drain wall-clock smoke
//!   ceiling.
//! * **EL** (`exp_latency --json`, baseline `BENCH_latency_baseline.json`)
//!   — per-op latency percentiles under incremental reorganisation
//!   (`Tuning::reorg_pages_per_op`). The I/O percentiles are exact per-op
//!   meters, diffed like any count; the absolute budget pins the no-spike
//!   claim: with budget k = 8 the worst single op stays ≤ 40 I/Os at
//!   n=500k (the k = 0 row keeps the O(n/B) stop-the-world spike for
//!   contrast). Wall clock is a smoke ceiling only.
//! * **EC** (`exp_throughput --json`, baseline
//!   `BENCH_throughput_baseline.json`) — snapshot-serving throughput under
//!   a concurrent writer flood. Wall-clock only, so nothing is diffed
//!   relatively; the absolute bounds pin reader scaling (scaling loss
//!   ≤ 2.0 at 8 readers, i.e. ≥ 4× single-reader qps on an 8-core runner)
//!   and the p99 commit-visibility latency ceiling.
//! * **ER** (`exp_recovery --json`, baseline
//!   `BENCH_recovery_baseline.json`) — the durability subsystem. Wall-clock
//!   only. Absolute bounds: group-commit durable acks (`fsync-group`) cost
//!   ≤ 2× the volatile engine's p99 submit→ack latency (the volatile p99
//!   is floored at 1 ms so the ratio is meaningful on fast disks), and
//!   recovering a 100k-op WAL with no usable checkpoint takes ≤ 2 s.
//! * **ES** (`exp_shard --json`, baseline `BENCH_shard_baseline.json`) —
//!   the x-range sharded fan-out. Aggregate flood/query I/O is exact and
//!   thread-invariant (each shard charges its own striped counter; the
//!   thread budget only moves work between threads), so both columns are
//!   diffed like any count. Absolute bounds: scaling loss ≤ 2.0 at
//!   8 shards / max threads (≥ 3-4× flood-apply *and* batched-query
//!   speedup on an 8-core runner, degenerating to ~1 where there is no
//!   parallelism to lose — the sequential threads=1 rows are deliberately
//!   not gated, their loss legitimately grows with core count), plus
//!   wall-clock smoke ceilings on the 1-shard baseline rows.
//! * **EF** (`exp_file --json`, baseline `BENCH_file_baseline.json`) —
//!   the file backend vs the in-memory model. Wall-clock only: the
//!   exact-I/O equivalence of the two backends is a hard assertion of the
//!   `backends` differential suite, so this gate just keeps the mirror's
//!   build/flood/stab overhead under absolute smoke ceilings (~10× the
//!   measured dev-box numbers) on the file rows.
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_interval -- --json > new.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_baseline.json new.json
//! cargo run --release -p ccix-bench --bin exp_query_batch -- --json > newq.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_query_baseline.json newq.json
//! cargo run --release -p ccix-bench --bin exp_build -- --json > newb.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_build_baseline.json newb.json
//! cargo run --release -p ccix-bench --bin exp_delete -- --json > newd.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_delete_baseline.json newd.json
//! cargo run --release -p ccix-bench --bin exp_latency -- --json > newl.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_latency_baseline.json newl.json
//! cargo run --release -p ccix-bench --bin exp_throughput -- --json > newt.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_throughput_baseline.json newt.json
//! cargo run --release -p ccix-bench --bin exp_recovery -- --json > newr.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_recovery_baseline.json newr.json
//! cargo run --release -p ccix-bench --bin exp_shard -- --json > news.json
//! cargo run --release -p ccix-bench --bin perf_gate -- BENCH_shard_baseline.json news.json
//! ```
//!
//! Std-only (the workspace has no registry access): the JSON reader below
//! understands exactly the subset `report::tables_to_json` emits — arrays,
//! objects, strings and numbers — and the tables carry all cells as strings.

use std::process::ExitCode;

/// Relative headroom before a rise counts as a regression.
const TOLERANCE_PCT: f64 = 5.0;
/// Space budget: index pages ≤ this multiple of scan pages, at n=500000
/// (E9 only).
const SPACE_FACTOR: f64 = 4.0;

/// Row selector for an absolute budget: every (column, value) pair must
/// match.
type Selector = &'static [(&'static str, &'static str)];

/// One gated experiment table.
struct Spec {
    /// Matched against the table's title.
    title_prefix: &'static str,
    /// Columns whose values form a row's identity.
    key_cols: &'static [&'static str],
    /// Columns gated relative to the baseline (lower is better).
    gated: &'static [&'static str],
    /// Absolute budgets: rows matching the selector must keep
    /// `column ≤ bound`.
    absolute: &'static [(Selector, &'static str, f64)],
    /// E9's special rule: index pages ≤ SPACE_FACTOR × scan pages.
    space_rule: bool,
}

const SPECS: &[Spec] = &[
    Spec {
        title_prefix: "E9",
        key_cols: &["B", "n"],
        gated: &["index q I/O", "index ins I/O", "index pages"],
        absolute: &[
            (&[("n", "500000")], "index ins I/O", 15.0),
            (&[("n", "500000")], "index q I/O", 12.0),
        ],
        space_rule: true,
    },
    Spec {
        title_prefix: "EQB —",
        key_cols: &["B", "n", "workload"],
        gated: &["single q I/O", "amortised q I/O"],
        absolute: &[
            (
                &[("n", "500000"), ("workload", "uniform")],
                "single q I/O",
                12.0,
            ),
            (
                &[("n", "500000"), ("workload", "correlated-2k")],
                "amortised q I/O",
                6.0,
            ),
        ],
        space_rule: false,
    },
    Spec {
        // Wall-clock smoke: absolute ceilings only (timings are noisy, so
        // no relative diff), sized ~10× above the measured build times.
        title_prefix: "EQB-build",
        key_cols: &["B"],
        gated: &[],
        absolute: &[
            (&[("B", "256")], "build ms", 2_000.0),
            (&[("B", "1024")], "build ms", 15_000.0),
        ],
        space_rule: false,
    },
    Spec {
        // The tombstone delete path. All I/O columns are exact and
        // bit-reproducible. Absolute budgets pin the PR's acceptance
        // criteria: deletes amortise within the E9 *insert* budget (15),
        // batched deletes beat serial routing, queries with pending
        // tombstones stay bounded, and the occupancy shrink returns a 10%-
        // drained index to ~4× the live heap-file scan (50k live / B=32 →
        // 1563 scan pages; measured 6038). The drain wall clock gets a
        // ~10× smoke ceiling like EB.
        title_prefix: "ED —",
        key_cols: &["B", "n", "phase"],
        gated: &["amortised I/O", "q I/O", "pages"],
        absolute: &[
            (
                &[("n", "500000"), ("phase", "delete-flood")],
                "amortised I/O",
                15.0,
            ),
            (
                &[("n", "500000"), ("phase", "delete-batch64")],
                "amortised I/O",
                10.0,
            ),
            (&[("n", "500000"), ("phase", "delete-flood")], "q I/O", 12.0),
            (
                &[("n", "500000"), ("phase", "drain-to-10pct")],
                "pages",
                7_000.0,
            ),
            (
                &[("n", "500000"), ("phase", "drain-to-10pct")],
                "ms",
                15_000.0,
            ),
        ],
        space_rule: false,
    },
    Spec {
        // Per-op latency under incremental reorganisation. The I/O
        // percentile columns are exact (per-op metering of a seeded flood),
        // so the relative diff is an exact gate; the absolute budget pins
        // the tentpole claim — with a finite budget (k=8) no single op may
        // exceed the descent-plus-bleed envelope (measured max 17, budget
        // 40), where the k=0 row's max carries the O(n/B) shrink spike
        // (measured 44863). Wall clock gets a ~10× smoke ceiling only.
        title_prefix: "EL —",
        key_cols: &["B", "n", "k"],
        gated: &["p50 I/O", "p99 I/O", "max I/O"],
        absolute: &[
            (&[("n", "500000"), ("k", "8")], "max I/O", 40.0),
            (&[("n", "500000"), ("k", "8")], "ms", 15_000.0),
        ],
        space_rule: false,
    },
    Spec {
        // The rebuild pipeline. Build I/O is exact and bit-reproducible —
        // any rise is a real regression (and the thread count must not
        // change it, which the shared key row pair checks implicitly).
        // Wall-clock cells are absolute smoke ceilings only, ~10× the
        // measured dev numbers (docs/tuning.md records them).
        title_prefix: "EB —",
        key_cols: &["tree", "n", "threads"],
        gated: &["build I/O"],
        absolute: &[
            (
                &[("tree", "diag"), ("n", "500000"), ("threads", "1")],
                "build ms",
                2_000.0,
            ),
            (
                &[("tree", "diag"), ("n", "500000"), ("threads", "1")],
                "flood ms",
                1_000.0,
            ),
            (
                &[("tree", "diag"), ("n", "2100000"), ("threads", "max")],
                "build ms",
                12_000.0,
            ),
            (
                &[("tree", "3sided"), ("n", "500000"), ("threads", "1")],
                "flood ms",
                2_500.0,
            ),
        ],
        space_rule: false,
    },
    Spec {
        // Snapshot-serving throughput. Pure wall clock, so nothing is
        // diffed relatively; the absolute bounds carry the acceptance
        // criteria. "scaling loss" = min(readers, cores)/speedup: ≤ 2.0 at
        // 8 readers means ≥ 4× single-reader qps on an 8-core runner and
        // stays trivially satisfied on boxes with no parallelism to lose.
        // The p99 commit-visibility ceiling is sized ~10× the measured
        // dev-box number, like the other wall-clock smoke bounds.
        title_prefix: "EC —",
        key_cols: &["B", "n", "readers"],
        gated: &[],
        absolute: &[
            (&[("readers", "8")], "scaling loss", 2.0),
            (&[("readers", "8")], "p99 vis ms", 250.0),
        ],
        space_rule: false,
    },
    Spec {
        // Durable-commit overhead. Pure wall clock, nothing diffed
        // relatively. "overhead p99" is durable p99 / max(volatile p99,
        // 1 ms) — the acceptance bound says group commit costs at most 2×
        // the volatile path at that floor. fsync-1 (a real fsync per
        // commit) is reported for the table but not gated: its cost is
        // the disk's, not the code's.
        title_prefix: "ER —",
        key_cols: &["mode"],
        gated: &[],
        absolute: &[(&[("mode", "fsync-group")], "overhead p99", 2.0)],
        space_rule: false,
    },
    Spec {
        // The file backend. Pure wall clock — the *exact-I/O* equivalence
        // of the two backends is enforced by the backends differential
        // suite, so nothing here is diffed relatively; the absolute smoke
        // ceilings (~10× measured dev-box numbers) catch a mirror that
        // starts syncing per write or thrashing its page cache.
        title_prefix: "EF —",
        key_cols: &["backend", "B", "n"],
        gated: &[],
        absolute: &[
            (&[("backend", "file")], "build ms", 2_000.0),
            (&[("backend", "file")], "flood ms", 4_000.0),
            (&[("backend", "file")], "stab1 ms", 2_500.0),
            (&[("backend", "file")], "stab2 ms", 2_500.0),
        ],
        space_rule: false,
    },
    Spec {
        // Recovery wall clock: replaying a 100k-op WAL must stay under
        // the 2 s smoke ceiling (measured far lower; the ceiling is the
        // usual ~10× guard against runner noise).
        title_prefix: "ER-recover",
        key_cols: &["wal ops"],
        gated: &[],
        absolute: &[(&[("wal ops", "100000")], "recover ms", 2_000.0)],
        space_rule: false,
    },
    Spec {
        // The x-range sharded fan-out. Aggregate flood/query I/O is exact
        // and thread-invariant, so any rise (or any threads=1 vs
        // threads=max divergence, which the shared baseline rows encode)
        // is a real routing regression. The scaling-loss bound gates only
        // the max-threads rows at 8 shards: the documented formula
        // min(shards, cores)/speedup enforces ≥ 3-4× on an 8-core runner
        // and degenerates to ~1 where core detection (clamp-corrected by
        // the thread-induced-speedup witness) finds nothing to lose. The
        // sequential rows are not gated — their loss legitimately grows
        // with the runner's core count. Wall-clock cells get the usual
        // ~10× smoke ceilings on the 1-shard baseline rows only.
        title_prefix: "ES —",
        key_cols: &["workload", "shards", "threads"],
        gated: &["flood I/O", "query I/O"],
        absolute: &[
            (
                &[("workload", "uniform"), ("shards", "8"), ("threads", "max")],
                "scaling loss",
                2.0,
            ),
            (
                &[("workload", "zipf"), ("shards", "8"), ("threads", "max")],
                "scaling loss",
                2.0,
            ),
            (
                &[("workload", "uniform"), ("shards", "1"), ("threads", "1")],
                "flood ms",
                2_000.0,
            ),
            (
                &[("workload", "uniform"), ("shards", "1"), ("threads", "1")],
                "query ms",
                10_000.0,
            ),
            (
                &[("workload", "uniform"), ("shards", "1"), ("threads", "1")],
                "build ms",
                5_000.0,
            ),
        ],
        space_rule: false,
    },
];

// ---- minimal JSON value ---------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    String(String),
    Number(f64),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
    Bool(bool),
    Null,
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> &[Json] {
        match self {
            Json::Array(items) => items,
            _ => &[],
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::String(s) => s,
            _ => "",
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.bytes.get(self.pos) {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", c as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("malformed \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the whole UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("nonempty rest");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

// ---- table extraction -----------------------------------------------------

/// One experiment table: headers plus rows keyed by the (B, n) columns.
struct GateTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl GateTable {
    fn column(&self, name: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == name)
    }

    fn cell(&self, row: &[String], name: &str) -> Result<f64, String> {
        let idx = self
            .column(name)
            .ok_or_else(|| format!("column {name:?} missing"))?;
        let raw = row.get(idx).map(String::as_str).unwrap_or("");
        raw.trim_end_matches('x')
            .parse::<f64>()
            .map_err(|_| format!("column {name:?} holds non-numeric cell {raw:?}"))
    }

    /// A row's identity under `key_cols`, e.g. "(B=32, n=500000)".
    fn key_of(&self, row: &[String], key_cols: &[&str]) -> String {
        let parts: Vec<String> = key_cols
            .iter()
            .map(|&k| {
                let v = self
                    .column(k)
                    .and_then(|i| row.get(i))
                    .map(String::as_str)
                    .unwrap_or("");
                format!("{k}={v}")
            })
            .collect();
        format!("({})", parts.join(", "))
    }
}

/// Load every table from a `tables_to_json` file, with titles.
fn load_tables(path: &str) -> Result<Vec<(String, GateTable)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut parser = Parser::new(&text);
    let root = parser.value()?;
    let mut out = Vec::new();
    for table in root.as_array() {
        let title = table
            .get("title")
            .map(|v| v.as_str().to_string())
            .unwrap_or_default();
        let headers: Vec<String> = table
            .get("headers")
            .map(|h| {
                h.as_array()
                    .iter()
                    .map(|c| c.as_str().to_string())
                    .collect()
            })
            .unwrap_or_default();
        let rows: Vec<Vec<String>> = table
            .get("rows")
            .map(|r| {
                r.as_array()
                    .iter()
                    .map(|row| {
                        row.as_array()
                            .iter()
                            .map(|c| c.as_str().to_string())
                            .collect()
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.push((title, GateTable { headers, rows }));
    }
    Ok(out)
}

fn find<'t>(tables: &'t [(String, GateTable)], prefix: &str) -> Option<&'t GateTable> {
    tables
        .iter()
        .find(|(title, _)| title.starts_with(prefix))
        .map(|(_, t)| t)
}

/// Gate one spec's table: relative diff on every keyed baseline row, then
/// the absolute budgets on the candidate.
fn gate_spec(
    spec: &Spec,
    baseline: &GateTable,
    candidate: &GateTable,
    failures: &mut Vec<String>,
) -> Result<(), String> {
    for base_row in &baseline.rows {
        let key = baseline.key_of(base_row, spec.key_cols);
        let Some(cand_row) = candidate
            .rows
            .iter()
            .find(|r| candidate.key_of(r, spec.key_cols) == key)
        else {
            failures.push(format!("[{}] row {key} disappeared", spec.title_prefix));
            continue;
        };
        for &col in spec.gated {
            let base = baseline.cell(base_row, col)?;
            let cand = candidate.cell(cand_row, col)?;
            let limit = base * (1.0 + TOLERANCE_PCT / 100.0);
            if cand > limit {
                failures.push(format!(
                    "[{}] {key} {col}: {cand} > {base} +{TOLERANCE_PCT}% (limit {limit:.2})",
                    spec.title_prefix
                ));
            }
        }
    }
    for &(selector, col, bound) in spec.absolute {
        let mut matched = 0usize;
        for row in candidate.rows.iter().filter(|r| {
            selector.iter().all(|&(k, v)| {
                candidate
                    .column(k)
                    .and_then(|i| r.get(i))
                    .is_some_and(|cell| cell == v)
            })
        }) {
            matched += 1;
            let v = candidate.cell(row, col)?;
            if v > bound {
                failures.push(format!(
                    "[{}] {} {col}: {v} > absolute budget {bound}",
                    spec.title_prefix,
                    candidate.key_of(row, spec.key_cols)
                ));
            }
        }
        if matched == 0 {
            // A budget that stops matching any row is a gate that silently
            // stopped gating — treat it as a configuration error.
            return Err(format!(
                "no candidate row matches the absolute budget {selector:?} on {col:?} ({})",
                spec.title_prefix
            ));
        }
    }
    if spec.space_rule {
        let Some(big) = candidate.rows.iter().find(|r| {
            candidate
                .column("n")
                .and_then(|i| r.get(i))
                .is_some_and(|c| c == "500000")
        }) else {
            return Err("candidate has no n=500000 row".into());
        };
        let pages = candidate.cell(big, "index pages")?;
        let scan = candidate.cell(big, "scan pages")?;
        if pages > SPACE_FACTOR * scan {
            failures.push(format!(
                "n=500000 index pages: {pages} > {SPACE_FACTOR}× scan pages ({scan})"
            ));
        }
    }
    Ok(())
}

fn run(baseline_path: &str, candidate_path: &str) -> Result<Vec<String>, String> {
    let baseline = load_tables(baseline_path)?;
    let candidate = load_tables(candidate_path)?;
    let mut failures = Vec::new();
    let mut gated = 0usize;
    for spec in SPECS {
        let Some(base) = find(&baseline, spec.title_prefix) else {
            continue; // this baseline file doesn't carry the table
        };
        let Some(cand) = find(&candidate, spec.title_prefix) else {
            return Err(format!(
                "{candidate_path}: table {:?} present in baseline but missing",
                spec.title_prefix
            ));
        };
        if base.headers.is_empty() || base.rows.is_empty() {
            return Err(format!(
                "{baseline_path}: {:?} table is empty",
                spec.title_prefix
            ));
        }
        gate_spec(spec, base, cand, &mut failures)?;
        gated += 1;
    }
    if gated == 0 {
        return Err(format!("{baseline_path}: no gated table found"));
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline, candidate] = args.as_slice() else {
        eprintln!("usage: perf_gate <baseline.json> <candidate.json>");
        return ExitCode::from(2);
    };
    match run(baseline, candidate) {
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::from(2)
        }
        Ok(failures) if failures.is_empty() => {
            println!("perf_gate: OK — no I/O or space regression vs {baseline}");
            ExitCode::SUCCESS
        }
        Ok(failures) => {
            eprintln!("perf_gate: {} regression(s) vs {baseline}:", failures.len());
            for f in &failures {
                eprintln!("  - {f}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_report_json() {
        let text = r#"[{"title": "E9 — test", "claim": "c", "headers": ["B", "n", "index q I/O", "index ins I/O", "index pages", "scan pages"], "rows": [["32", "500000", "15.8", "11.0", "61170", "15625"]]}]"#;
        let mut p = Parser::new(text);
        let v = p.value().expect("parses");
        let t = v.as_array()[0].get("title").unwrap().as_str().to_string();
        assert!(t.starts_with("E9"));
    }

    #[test]
    fn regression_detected_and_tolerance_respected() {
        let dir = std::env::temp_dir().join("ccix_perf_gate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, q: &str, ins: &str, pages: &str| {
            let path = dir.join(name);
            let body = format!(
                r#"[{{"title": "E9 — t", "claim": "c", "headers": ["B", "n", "index q I/O", "index ins I/O", "index pages", "scan pages"], "rows": [["32", "500000", {q:?}, {ins:?}, {pages:?}, "15625"]]}}]"#
            );
            std::fs::write(&path, body).unwrap();
            path.to_str().unwrap().to_string()
        };
        let base = mk("base.json", "11.4", "11.0", "61170");
        let same = mk("same.json", "11.4", "11.0", "61170");
        let within = mk("within.json", "11.4", "11.3", "62000");
        let worse = mk("worse.json", "11.4", "12.0", "61170");
        let over_budget = mk("over.json", "11.4", "11.0", "64000");
        let over_absolute = mk("over_abs.json", "12.1", "11.0", "61170");
        assert!(run(&base, &same).unwrap().is_empty());
        assert!(run(&base, &within).unwrap().is_empty(), "5% headroom");
        assert_eq!(run(&base, &worse).unwrap().len(), 1, "relative gate");
        assert_eq!(
            run(&base, &over_budget).unwrap().len(),
            1,
            "absolute 4x gate"
        );
        assert_eq!(
            run(&base, &over_absolute).unwrap().len(),
            2,
            "absolute q budget (12) plus the relative rise both fire"
        );
    }

    #[test]
    fn eb_table_is_gated() {
        let dir = std::env::temp_dir().join("ccix_perf_gate_eb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, io: &str, build: &str, flood: &str| {
            let path = dir.join(name);
            let body = format!(
                concat!(
                    r#"[{{"title": "EB — rebuild", "claim": "c", "headers": ["tree", "B", "n", "threads", "build ms", "build I/O", "flood", "flood ms"], "#,
                    r#""rows": [["diag", "32", "500000", "1", {bu:?}, {io:?}, "50000", {fl:?}], "#,
                    r#"["diag", "32", "2100000", "max", "900", "256150", "60000", "70"], "#,
                    r#"["3sided", "32", "500000", "1", "200", "81425", "50000", "180"]]}}]"#
                ),
                bu = build,
                io = io,
                fl = flood
            );
            std::fs::write(&path, body).unwrap();
            path.to_str().unwrap().to_string()
        };
        let base = mk("base.json", "62135", "160", "60");
        let ok = mk("ok.json", "62135", "500", "300");
        let io_regressed = mk("io.json", "70000", "160", "60");
        let slow_build = mk("slowb.json", "62135", "2500", "60");
        let slow_flood = mk("slowf.json", "62135", "160", "1100");
        assert!(run(&base, &ok).unwrap().is_empty(), "timings not diffed");
        assert_eq!(
            run(&base, &io_regressed).unwrap().len(),
            1,
            "exact I/O gate"
        );
        assert_eq!(run(&base, &slow_build).unwrap().len(), 1, "build ceiling");
        assert_eq!(run(&base, &slow_flood).unwrap().len(), 1, "flood ceiling");
    }

    #[test]
    fn eqb_tables_are_gated() {
        let dir = std::env::temp_dir().join("ccix_perf_gate_eqb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, single: &str, amort: &str, ms: &str| {
            let path = dir.join(name);
            let body = format!(
                concat!(
                    r#"[{{"title": "EQB — floods", "claim": "c", "headers": ["B", "n", "workload", "batch", "single q I/O", "amortised q I/O"], "#,
                    r#""rows": [["32", "500000", "uniform", "64", {s:?}, "10.5"], ["32", "500000", "correlated-2k", "64", "11.4", {a:?}]]}}, "#,
                    r#"{{"title": "EQB-build — wall clock", "claim": "c", "headers": ["B", "|S|", "build ms"], "rows": [["256", "131072", "32"], ["1024", "2097152", {m:?}]]}}]"#
                ),
                s = single,
                a = amort,
                m = ms
            );
            std::fs::write(&path, body).unwrap();
            path.to_str().unwrap().to_string()
        };
        let base = mk("base.json", "11.4", "0.9", "1400");
        let ok = mk("ok.json", "11.5", "0.9", "9000");
        let slow_query = mk("slow.json", "12.5", "0.9", "1400");
        let slow_batch = mk("slowb.json", "11.4", "6.5", "1400");
        let slow_build = mk("slowc.json", "11.4", "0.9", "16000");
        assert!(run(&base, &ok).unwrap().is_empty(), "within tolerance");
        assert_eq!(
            run(&base, &slow_query).unwrap().len(),
            2,
            "relative + absolute single-query budget"
        );
        assert!(!run(&base, &slow_batch).unwrap().is_empty(), "batch budget");
        assert_eq!(
            run(&base, &slow_build).unwrap().len(),
            1,
            "wall-clock smoke ceiling"
        );
    }
}
