//! Experiment binary: see `ccix_bench::experiments::er_recovery`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_recovery_baseline.json` (the durability baseline — wall-clock
//! only, gated by absolute bounds: fsync-group commit overhead ≤ 2× the
//! volatile p99, and recovery of a 100k-op WAL ≤ 2 s):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_recovery -- --json > BENCH_recovery_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::er_recovery();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
