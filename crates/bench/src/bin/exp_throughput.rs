//! Experiment binary: see `ccix_bench::experiments::ec_throughput`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_throughput_baseline.json` (the snapshot-serving throughput
//! baseline — wall-clock only, gated by absolute bounds):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_throughput -- --json > BENCH_throughput_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::ec_throughput();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
