//! Experiment binary: see `ccix_bench::experiments::e9_interval`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_baseline.json` (the workspace's I/O-count perf baseline):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_interval -- --json > BENCH_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::e9_interval();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
