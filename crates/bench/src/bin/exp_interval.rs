//! Experiment binary: see `ccix_bench::experiments::e9_interval`.
fn main() {
    for table in ccix_bench::experiments::e9_interval() {
        table.print();
    }
}
