//! Experiment binary: see `ccix_bench::experiments::e14_write_tuning`.
//!
//! Sweeps the `ccix_core::Tuning` knobs (update batch, TD batch, TS budget,
//! corner adoption factor) on the E9 workload and reports stabbing-query
//! I/O, amortised insert I/O, and space, to justify the shipped defaults
//! (`docs/tuning.md`).
fn main() {
    let tables = ccix_bench::experiments::e14_write_tuning();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
