//! Experiment binary: see `ccix_bench::experiments::e12_pst_vs_metablock`.
fn main() {
    for table in ccix_bench::experiments::e12_pst_vs_metablock() {
        table.print();
    }
}
