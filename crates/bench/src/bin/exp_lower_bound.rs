//! Experiment binary: see `ccix_bench::experiments::e3_lower_bound`.
fn main() {
    for table in ccix_bench::experiments::e3_lower_bound() {
        table.print();
    }
}
