//! Experiment binary: see `ccix_bench::experiments::e0_bptree_reference`.
fn main() {
    for table in ccix_bench::experiments::e0_bptree_reference() {
        table.print();
    }
}
