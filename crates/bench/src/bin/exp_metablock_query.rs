//! Experiment binary: see `ccix_bench::experiments::e1_metablock_query`.
fn main() {
    for table in ccix_bench::experiments::e1_metablock_query() {
        table.print();
    }
}
