//! Experiment binary: see `ccix_bench::experiments::e6_class_rc`.
fn main() {
    for table in ccix_bench::experiments::e6_class_rc() {
        table.print();
    }
}
