//! CI docs gate: validate every **relative** Markdown link and anchor in
//! `README.md` and `docs/*.md`.
//!
//! Std-only (the workspace has no registry access), like `perf_gate`. The
//! checker walks each file for inline links `[text](target)`, skips
//! absolute URLs (`http:`, `https:`, `mailto:`), and verifies that
//!
//! * a relative path target resolves to an existing file (relative to the
//!   linking file's directory), and
//! * an `#anchor` fragment (with or without a path) matches a heading of
//!   the target file under GitHub's slugification (lowercase; spaces to
//!   `-`; punctuation dropped).
//!
//! ```text
//! cargo run --release -p ccix-bench --bin docs_check [repo-root]
//! ```
//!
//! Exits non-zero listing every broken link, so a renamed doc section or a
//! moved file fails CI instead of rotting quietly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// GitHub's heading slugification: lowercase, alphanumerics kept, spaces
/// and hyphens become hyphens, everything else dropped.
fn slugify(heading: &str) -> String {
    let mut out = String::new();
    for ch in heading.trim().chars() {
        if ch.is_alphanumeric() {
            out.extend(ch.to_lowercase());
        } else if ch == ' ' || ch == '-' || ch == '_' {
            out.push(if ch == '_' { '_' } else { '-' });
        }
        // Other punctuation is dropped.
    }
    out
}

/// The anchors a Markdown file defines: one slug per ATX heading, with
/// GitHub's `-1`, `-2` … suffixes for repeats.
fn anchors_of(text: &str) -> Vec<String> {
    let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut out = Vec::new();
    let mut in_code = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code {
            continue;
        }
        let trimmed = line.trim_start();
        let hashes = trimmed.chars().take_while(|&c| c == '#').count();
        if hashes == 0 || hashes > 6 || !trimmed[hashes..].starts_with(' ') {
            continue;
        }
        let slug = slugify(&trimmed[hashes + 1..]);
        let n = counts.entry(slug.clone()).or_insert(0);
        out.push(if *n == 0 {
            slug.clone()
        } else {
            format!("{slug}-{n}")
        });
        *n += 1;
    }
    out
}

/// Inline Markdown link targets of a file: the parenthesised part of every
/// `[text](target)`, skipping fenced code blocks and inline code spans.
fn link_targets(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_code = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_code = !in_code;
            continue;
        }
        if in_code {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        let mut in_span = false;
        while i < bytes.len() {
            match bytes[i] {
                b'`' => in_span = !in_span,
                b']' if !in_span && i + 1 < bytes.len() && bytes[i + 1] == b'(' => {
                    if let Some(end) = line[i + 2..].find(')') {
                        out.push(line[i + 2..i + 2 + end].to_string());
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out
}

/// Check one file's links; push failures into `errors`.
fn check_file(root: &Path, file: &Path, errors: &mut Vec<String>) {
    let text = match std::fs::read_to_string(file) {
        Ok(t) => t,
        Err(e) => {
            errors.push(format!("{}: unreadable: {e}", file.display()));
            return;
        }
    };
    let dir = file.parent().unwrap_or(root);
    for target in link_targets(&text) {
        let target = target.split_whitespace().next().unwrap_or("").to_string();
        if target.is_empty()
            || target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
        {
            continue;
        }
        let (path_part, anchor) = match target.split_once('#') {
            Some((p, a)) => (p, Some(a.to_string())),
            None => (target.as_str(), None),
        };
        let resolved: PathBuf = if path_part.is_empty() {
            file.to_path_buf()
        } else {
            dir.join(path_part)
        };
        if !resolved.exists() {
            errors.push(format!(
                "{}: broken link target `{target}` (no such file {})",
                file.display(),
                resolved.display()
            ));
            continue;
        }
        if let Some(anchor) = anchor {
            let is_md = resolved
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("md"));
            if !is_md {
                continue; // anchors into non-Markdown files are not checked
            }
            let target_text = std::fs::read_to_string(&resolved).unwrap_or_default();
            if !anchors_of(&target_text).contains(&anchor) {
                errors.push(format!(
                    "{}: dead anchor `#{anchor}` in {}",
                    file.display(),
                    resolved.display()
                ));
            }
        }
    }
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut files = vec![root.join("README.md")];
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.extension().is_some_and(|x| x == "md") {
                files.push(p);
            }
        }
    }
    files.sort();
    let mut errors = Vec::new();
    for f in &files {
        check_file(&root, f, &mut errors);
    }
    if errors.is_empty() {
        println!(
            "docs_check: OK — {} files, all relative links live",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("docs_check: {e}");
        }
        eprintln!("docs_check: {} broken link(s)", errors.len());
        ExitCode::FAILURE
    }
}
