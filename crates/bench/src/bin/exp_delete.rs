//! Experiment binary: see `ccix_bench::experiments::ed_delete`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_delete_baseline.json` (the tombstone delete-path baseline):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_delete -- --json > BENCH_delete_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::ed_delete();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
