//! Experiment binary: see `ccix_bench::experiments::e13_ablation`.
fn main() {
    for table in ccix_bench::experiments::e13_ablation() {
        table.print();
    }
}
