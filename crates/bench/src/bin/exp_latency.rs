//! Experiment binary: see `ccix_bench::experiments::el_latency`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_latency_baseline.json` (the incremental-reorg latency baseline):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_latency -- --json > BENCH_latency_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::el_latency();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
