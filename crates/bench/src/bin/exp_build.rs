//! Experiment binary: see `ccix_bench::experiments::eb_build`.
//!
//! `--json` emits the machine-readable form used to regenerate
//! `BENCH_build_baseline.json` (the rebuild-pipeline wall-clock baseline):
//!
//! ```text
//! cargo run --release -p ccix-bench --bin exp_build -- --json > BENCH_build_baseline.json
//! ```
fn main() {
    let tables = ccix_bench::experiments::eb_build();
    if std::env::args().any(|a| a == "--json") {
        println!("{}", ccix_bench::report::tables_to_json(&tables));
    } else {
        for table in tables {
            table.print();
        }
    }
}
