//! Plain-text and Markdown tables for experiment output.

use std::fmt::Write as _;

/// A titled table of results, printable as aligned text or Markdown.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment identifier and headline (e.g. "E1 — Theorem 3.2").
    pub title: String,
    /// The paper's claim being reproduced, in one line.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, claim: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            claim: claim.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "ragged table row");
        self.rows.push(cells);
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = writeln!(out, "   {}", self.claim);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as a Markdown table with heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "{}\n", self.claim);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as a JSON object (hand-rolled: the workspace has no serde).
    pub fn to_json(&self) -> String {
        let esc = |s: &str| -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        };
        let list = |cells: &[String]| -> String {
            cells
                .iter()
                .map(|c| format!("\"{}\"", esc(c)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let rows = self
            .rows
            .iter()
            .map(|r| format!("    [{}]", list(r)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"title\": \"{}\",\n  \"claim\": \"{}\",\n  \"headers\": [{}],\n  \"rows\": [\n{}\n  ]\n}}",
            esc(&self.title),
            esc(&self.claim),
            list(&self.headers),
            rows
        )
    }

    /// Print the text rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }
}

/// Render a list of tables as one JSON array.
pub fn tables_to_json(tables: &[Table]) -> String {
    let body = tables
        .iter()
        .map(Table::to_json)
        .collect::<Vec<_>>()
        .join(",\n");
    format!("[\n{body}\n]")
}

/// Format a ratio to two decimals.
pub fn ratio(measured: u64, bound: usize) -> String {
    if bound == 0 {
        return "-".into();
    }
    format!("{:.2}", measured as f64 / bound as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_formats() {
        let mut t = Table::new("E0 — smoke", "nothing", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let text = t.to_text();
        assert!(text.contains("E0 — smoke"));
        assert!(text.contains("bb"));
        let md = t.to_markdown();
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("x", "y", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
