//! The experiment suite: one function per reproducible claim (DESIGN.md §5).
//!
//! Each returns [`Table`]s of measured I/O counts against the paper's
//! closed-form bounds. Runs are deterministic (seeded workloads, exact
//! counters), so `EXPERIMENTS.md` can be regenerated bit-identically with
//! `cargo run --release -p ccix-bench --bin exp_all`.

use ccix_bptree::{BPlusTree, Entry};
use ccix_class::{
    ClassIndex, FullExtentBaseline, RakeClassIndex, RangeTreeClassIndex, SingleIndexBaseline,
};
use ccix_core::{CornerStructure, DiagOptions, MetablockTree, Tuning};
use ccix_extmem::{Disk, Geometry, IoCounter, Point, TypedStore};
use ccix_interval::{IndexBuilder, IntervalIndex, NaiveIntervalStore};
use ccix_pst::ExternalPst;

use crate::report::{ratio, Table};
use crate::workloads::{self, HierarchyShape};

/// E1 — Theorem 3.2: static metablock tree query cost is
/// `O(log_B n + t/B)` and space is `O(n/B)`.
pub fn e1_metablock_query() -> Vec<Table> {
    let mut t = Table::new(
        "E1 — Theorem 3.2 (static metablock tree)",
        "Diagonal-corner queries cost O(log_B n + t/B) I/Os; space O(n/B) pages.",
        &[
            "B",
            "n",
            "queries",
            "avg t",
            "avg I/O",
            "max I/O",
            "bound",
            "max/bound",
            "pages",
            "pages/(n/B)",
        ],
    );
    for &b in &[16usize, 64] {
        for &n in &[1_000usize, 10_000, 100_000, 400_000] {
            let geo = Geometry::new(b);
            let ivs = workloads::uniform_intervals(n, 0xE1 + n as u64, 4 * n as i64, n as i64 / 4);
            let pts = workloads::interval_points(&ivs);
            let counter = IoCounter::new();
            let tree = MetablockTree::build(geo, counter.clone(), pts);
            let mut r = workloads::rng(0x01E1);
            let queries = 64usize;
            let (mut sum_io, mut max_io, mut sum_t, mut worst_ratio_bound) =
                (0u64, 0u64, 0usize, 0usize);
            for _ in 0..queries {
                let q = r.gen_range(0..4 * n as i64);
                let before = counter.snapshot();
                let out = tree.query(q);
                let cost = counter.since(before).reads;
                sum_io += cost;
                sum_t += out.len();
                let bound = geo.log_b(n) + geo.out_blocks(out.len());
                if cost > max_io {
                    max_io = cost;
                    worst_ratio_bound = bound;
                }
            }
            t.row(vec![
                b.to_string(),
                n.to_string(),
                queries.to_string(),
                (sum_t / queries).to_string(),
                format!("{:.1}", sum_io as f64 / queries as f64),
                max_io.to_string(),
                worst_ratio_bound.to_string(),
                ratio(max_io, worst_ratio_bound),
                tree.space_pages().to_string(),
                format!(
                    "{:.2}",
                    tree.space_pages() as f64 / geo.out_blocks(n) as f64
                ),
            ]);
        }
    }
    vec![t]
}

/// E2 — Lemma 3.1: corner structures answer in `≤ 2⌈t/B⌉ + O(1)` I/Os
/// within `O(|S|/B)` blocks.
pub fn e2_corner_structure() -> Vec<Table> {
    let mut t = Table::new(
        "E2 — Lemma 3.1 (corner structure)",
        "A kB²-point corner structure answers diagonal queries in ≤ 2t/B + O(1) I/Os.",
        &[
            "B",
            "|S|",
            "queries",
            "max I/O",
            "max 2⌈t/B⌉+6",
            "worst slack",
            "pages",
            "pages/(|S|/B)",
        ],
    );
    for &b in &[16usize, 64] {
        for &mult in &[1usize, 2] {
            let geo = Geometry::new(b);
            let s = mult * geo.b2();
            let ivs = workloads::uniform_intervals(s, 0xE2 + s as u64, 10_000, 3_000);
            let pts = workloads::interval_points(&ivs);
            let counter = IoCounter::new();
            let mut store = TypedStore::new(b, counter.clone());
            let cs = CornerStructure::build(&mut store, &pts);
            let mut max_io = 0u64;
            let mut max_bound = 0usize;
            let mut worst_slack: i64 = i64::MIN;
            let queries = 400;
            for q in (0..13_000).step_by(13_000 / queries) {
                let before = counter.snapshot();
                let mut out = Vec::new();
                cs.query_into(&store, q, &mut out);
                let cost = counter.since(before).reads;
                let bound = 2 * geo.out_blocks(out.len()) + 6;
                max_io = max_io.max(cost);
                max_bound = max_bound.max(bound);
                worst_slack = worst_slack.max(cost as i64 - bound as i64);
            }
            t.row(vec![
                b.to_string(),
                s.to_string(),
                queries.to_string(),
                max_io.to_string(),
                max_bound.to_string(),
                worst_slack.to_string(),
                cs.pages().to_string(),
                format!("{:.2}", cs.pages() as f64 / geo.out_blocks(s) as f64),
            ]);
        }
    }
    vec![t]
}

/// E3 — Proposition 3.3: on the staircase instance every query is answered
/// within a constant factor of the `Ω(log_B n + t/B)` lower bound.
pub fn e3_lower_bound() -> Vec<Table> {
    let mut t = Table::new(
        "E3 — Proposition 3.3 (lower-bound instance)",
        "Staircase S = {(x, x+1)}: measured I/O over the Ω(log_B n + t/B) lower bound.",
        &[
            "B",
            "n",
            "queries",
            "avg I/O",
            "max I/O",
            "lower bound",
            "max/LB",
        ],
    );
    for &b in &[16usize, 64] {
        for &n in &[10_000usize, 100_000] {
            let geo = Geometry::new(b);
            let pts = workloads::staircase_points(n);
            let counter = IoCounter::new();
            let tree = MetablockTree::build(geo, counter.clone(), pts);
            let (mut sum, mut max) = (0u64, 0u64);
            let queries = 128;
            for i in 1..=queries {
                let q = (i * (n - 1) / queries) as i64;
                let before = counter.snapshot();
                let out = tree.query(q);
                let cost = counter.since(before).reads;
                assert!(out.len() <= 2);
                sum += cost;
                max = max.max(cost);
            }
            let lb = geo.log_b(n) + 1;
            t.row(vec![
                b.to_string(),
                n.to_string(),
                queries.to_string(),
                format!("{:.1}", sum as f64 / queries as f64),
                max.to_string(),
                lb.to_string(),
                ratio(max, lb),
            ]);
        }
    }
    vec![t]
}

/// E4 — Theorem 3.7: amortised insert cost `O(log_B n + (log_B n)²/B)`.
pub fn e4_metablock_insert() -> Vec<Table> {
    let mut t = Table::new(
        "E4 — Theorem 3.7 (semi-dynamic insertion)",
        "Amortised insert I/O is O(log_B n + (log_B n)²/B); queries stay optimal afterwards.",
        &[
            "B",
            "order",
            "n",
            "amort I/O",
            "bound",
            "amort/bound",
            "worst op",
            "post-insert q avg",
        ],
    );
    for &b in &[16usize, 64] {
        for order in ["random", "ascending"] {
            let geo = Geometry::new(b);
            let n = 100_000usize;
            let counter = IoCounter::new();
            let mut tree = MetablockTree::new(geo, counter.clone());
            let mut r = workloads::rng(0xE4);
            let before_all = counter.snapshot();
            let mut worst = 0u64;
            for i in 0..n {
                let p = match order {
                    "random" => {
                        let lo = r.gen_range(0..(4 * n) as i64);
                        let len = r.gen_range(0..1_000i64);
                        Point::new(lo, lo + len, i as u64)
                    }
                    _ => Point::new(i as i64, i as i64 + 500, i as u64),
                };
                let before = counter.snapshot();
                tree.insert(p);
                worst = worst.max(counter.since(before).total());
            }
            let total = counter.since(before_all).total();
            let amort = total as f64 / n as f64;
            let logb = geo.log_b(n) as f64;
            let bound = logb + logb * logb / b as f64;
            // Post-insert query health.
            let mut qsum = 0u64;
            for i in 0..32 {
                let q = (i * 4 * n / 32) as i64;
                let before = counter.snapshot();
                let _ = tree.query(q);
                qsum += counter.since(before).reads;
            }
            t.row(vec![
                b.to_string(),
                order.to_string(),
                n.to_string(),
                format!("{amort:.1}"),
                format!("{bound:.1}"),
                format!("{:.1}", amort / bound),
                worst.to_string(),
                format!("{:.1}", qsum as f64 / 32.0),
            ]);
        }
    }
    vec![t]
}

/// Shared driver for E5/E6: load a class index and measure.
fn class_experiment<I: ClassIndex>(
    make: impl Fn(ccix_class::Hierarchy, IoCounter) -> I,
    shapes: &[(HierarchyShape, usize)],
    n: usize,
    table: &mut Table,
    bound: impl Fn(Geometry, usize, usize, usize) -> usize, // (geo, c, n, t) -> bound
) {
    let geo = Geometry::new(16);
    for &(shape, c) in shapes {
        let h = workloads::hierarchy(shape, c, 0xC1A55);
        let objects = workloads::uniform_objects(&h, n, 0x0B7 + c as u64, 1_000_000);
        let counter = IoCounter::new();
        let mut idx = make(h.clone(), counter.clone());
        let before = counter.snapshot();
        for o in &objects {
            idx.insert(*o);
        }
        let insert_amort = counter.since(before).total() as f64 / n as f64;

        let mut r = workloads::rng(1 + c as u64);
        let queries = 48;
        let (mut sum_io, mut max_io, mut sum_t, mut worst_bound) = (0u64, 0u64, 0usize, 0usize);
        for _ in 0..queries {
            let class = r.gen_range(0..h.len());
            let a = r.gen_range(0..900_000i64);
            let before = counter.snapshot();
            let out = idx.query(class, a, a + 50_000);
            let cost = counter.since(before).reads;
            sum_io += cost;
            sum_t += out.len();
            let bd = bound(geo, c, n, out.len());
            if cost > max_io {
                max_io = cost;
                worst_bound = bd;
            }
        }
        // Narrow queries isolate the search term (t ≈ 0): this is where the
        // log2 c factor of Theorem 2.6 vs the c-independence of Theorem 4.7
        // becomes visible. Sweep every class to capture the worst cover.
        let mut narrow_sum = 0u64;
        let mut narrow_max = 0u64;
        let mut narrow_n = 0u64;
        for class in 0..h.len() {
            let a = r.gen_range(0..999_000i64);
            let before = counter.snapshot();
            let _ = idx.query(class, a, a + 10);
            let cost = counter.since(before).reads;
            narrow_sum += cost;
            narrow_max = narrow_max.max(cost);
            narrow_n += 1;
        }
        table.row(vec![
            format!("{shape:?}"),
            c.to_string(),
            n.to_string(),
            (sum_t / queries).to_string(),
            format!("{:.1}", sum_io as f64 / queries as f64),
            max_io.to_string(),
            worst_bound.to_string(),
            ratio(max_io, worst_bound),
            format!("{:.1}/{narrow_max}", narrow_sum as f64 / narrow_n as f64),
            format!("{insert_amort:.1}"),
            idx.space_pages().to_string(),
        ]);
    }
}

/// E5 — Theorem 2.6: the range-tree class index.
pub fn e5_class_simple() -> Vec<Table> {
    let mut t = Table::new(
        "E5 — Theorem 2.6 (range-tree class index)",
        "Query O(log2 c·log_B n + t/B); insert O(log2 c·log_B n); space O((n/B)·log2 c).",
        &[
            "shape",
            "c",
            "n",
            "avg t",
            "avg I/O",
            "max I/O",
            "bound",
            "max/bound",
            "narrow avg/max",
            "insert I/O",
            "pages",
        ],
    );
    let shapes = [
        (HierarchyShape::Balanced, 15),
        (HierarchyShape::Balanced, 127),
        (HierarchyShape::Balanced, 1023),
        (HierarchyShape::Random, 255),
        (HierarchyShape::Star, 255),
        (HierarchyShape::Path, 255),
    ];
    class_experiment(
        |h, c| RangeTreeClassIndex::new(h, Geometry::new(16), c),
        &shapes,
        60_000,
        &mut t,
        |geo, c, n, out| 2 * Geometry::log2(c) * geo.log_b(n) + geo.out_blocks(out),
    );
    vec![t]
}

/// E6 — Theorem 4.7: the rake-and-contract class index.
pub fn e6_class_rc() -> Vec<Table> {
    let mut t = Table::new(
        "E6 — Theorem 4.7 (rake-and-contract class index)",
        "Query O(log_B n + t/B + log2 B) — independent of c; space O((n/B)·log2 c).",
        &[
            "shape",
            "c",
            "n",
            "avg t",
            "avg I/O",
            "max I/O",
            "bound",
            "max/bound",
            "narrow avg/max",
            "insert I/O",
            "pages",
        ],
    );
    let shapes = [
        (HierarchyShape::Balanced, 15),
        (HierarchyShape::Balanced, 127),
        (HierarchyShape::Balanced, 1023),
        (HierarchyShape::Random, 255),
        (HierarchyShape::Star, 255),
        (HierarchyShape::Path, 255),
    ];
    class_experiment(
        |h, c| RakeClassIndex::new(h, Geometry::new(16), c),
        &shapes,
        60_000,
        &mut t,
        |geo, _c, n, out| geo.log_b(n) + geo.out_blocks(out) + Geometry::log2(geo.b3()),
    );
    vec![t]
}

/// E7 — Lemma 4.1: the external PST answers 3-sided queries in
/// `O(log2 n + t/B)` I/Os.
pub fn e7_pst() -> Vec<Table> {
    let mut t = Table::new(
        "E7 — Lemma 4.1 (external priority search tree)",
        "3-sided queries in O(log2 n + t/B) I/Os; space O(n/B) pages.",
        &[
            "B",
            "n",
            "avg t",
            "avg I/O",
            "max I/O",
            "bound",
            "max/bound",
            "pages",
        ],
    );
    for &b in &[16usize, 64] {
        for &n in &[10_000usize, 100_000, 400_000] {
            let geo = Geometry::new(b);
            let pts = workloads::uniform_points(n, 0xE7, 1_000_000);
            let counter = IoCounter::new();
            let pst = ExternalPst::build(geo, counter.clone(), pts);
            let mut r = workloads::rng(7);
            let queries = 64;
            let (mut sum_io, mut max_io, mut sum_t, mut worst_bound) = (0u64, 0u64, 0usize, 0usize);
            for _ in 0..queries {
                let a = r.gen_range(0..900_000i64);
                let w = r.gen_range(0..200_000i64);
                let y0 = r.gen_range(0..1_000_000i64);
                let before = counter.snapshot();
                let out = pst.query(a, a + w, y0);
                let cost = counter.since(before).reads;
                sum_io += cost;
                sum_t += out.len();
                let bd = Geometry::log2(n) + geo.out_blocks(out.len());
                if cost > max_io {
                    max_io = cost;
                    worst_bound = bd;
                }
            }
            t.row(vec![
                b.to_string(),
                n.to_string(),
                (sum_t / queries).to_string(),
                format!("{:.1}", sum_io as f64 / queries as f64),
                max_io.to_string(),
                worst_bound.to_string(),
                ratio(max_io, worst_bound),
                pst.space_pages().to_string(),
            ]);
        }
    }
    vec![t]
}

/// E8 — Lemma 2.7 / Theorem 2.8: no rectangular tessellation of a grid
/// serves all row and column queries within `k·q/B` blocks unless `B ≤ k²`.
pub fn e8_tessellation() -> Vec<Table> {
    let mut t = Table::new(
        "E8 — Lemma 2.7 (tessellation lower bound)",
        "For any tessellation max(k_row, k_col) ≥ √B: one copy + rectangular blocks can't be optimal.",
        &["B", "p", "tessellation", "k_row", "k_col", "max k", "√B"],
    );
    let p = 256usize;
    for &b in &[16usize, 64, 256] {
        // Tessellations: w×h tiles with w·h = B.
        let mut shapes: Vec<(usize, usize, String)> = Vec::new();
        let mut w = 1;
        while w <= b {
            if b % w == 0 {
                shapes.push((w, b / w, format!("{w}x{}", b / w)));
            }
            w *= 2;
        }
        for (w, h, name) in shapes {
            // A row query of length p crosses ceil(p/w) tiles; per reported
            // point it touches (p/w) / (p/B) = B/w tiles per B outputs ⇒
            // k_row = B/w / ... : blocks touched = p/w for p outputs ⇒
            // k_row = (p/w)/(p/B) = B/w. Symmetrically k_col = B/h = w.
            let k_row = b / w;
            let k_col = b / h;
            let kmax = k_row.max(k_col);
            t.row(vec![
                b.to_string(),
                p.to_string(),
                name,
                k_row.to_string(),
                k_col.to_string(),
                kmax.to_string(),
                format!("{:.1}", (b as f64).sqrt()),
            ]);
        }
    }
    vec![t]
}

/// E9 — Proposition 2.2: the interval index vs the linear-scan baseline.
pub fn e9_interval() -> Vec<Table> {
    let mut t = Table::new(
        "E9 — Proposition 2.2 (interval management vs naive scan)",
        "Index queries cost O(log_B n + t/B); the heap-file scan costs n/B. Crossover is tiny.",
        &[
            "B",
            "n",
            "avg t",
            "index q I/O",
            "scan q I/O",
            "speedup",
            "index ins I/O",
            "scan ins I/O",
            "index pages",
            "scan pages",
        ],
    );
    let b = 32;
    let geo = Geometry::new(b);
    for &n in &[1_000usize, 10_000, 100_000, 500_000] {
        let ivs = workloads::uniform_intervals(n, 0xE9, 4 * n as i64, 2_000);
        let ic = IoCounter::new();
        let before_build = ic.snapshot();
        let idx = IndexBuilder::new(geo).bulk(ic.clone(), &ivs);
        let _build = ic.since(before_build);
        let nc = IoCounter::new();
        let mut naive = NaiveIntervalStore::new(geo, nc.clone());
        let before_naive_ins = nc.snapshot();
        for iv in &ivs {
            naive.insert(iv.lo, iv.hi, iv.id);
        }
        let naive_ins = nc.since(before_naive_ins).total() as f64 / n as f64;

        // Fresh incremental index for the insert-cost column.
        let ic2 = IoCounter::new();
        let mut idx2 = IndexBuilder::new(geo).open(ic2.clone());
        let before = ic2.snapshot();
        for iv in ivs.iter().take(20_000) {
            idx2.insert(iv.lo, iv.hi, iv.id);
        }
        let idx_ins = ic2.since(before).total() as f64 / ivs.len().min(20_000) as f64;

        let mut r = workloads::rng(9);
        let queries = 32;
        let (mut iq, mut nq, mut sum_t) = (0u64, 0u64, 0usize);
        for _ in 0..queries {
            let q = r.gen_range(0..4 * n as i64);
            let before = ic.snapshot();
            let a = idx.stabbing(q);
            iq += ic.since(before).reads;
            let before = nc.snapshot();
            let bhits = naive.stabbing(q);
            nq += nc.since(before).reads;
            assert_eq!(a.len(), bhits.len());
            sum_t += a.len();
        }
        t.row(vec![
            b.to_string(),
            n.to_string(),
            (sum_t / queries).to_string(),
            format!("{:.1}", iq as f64 / queries as f64),
            format!("{:.1}", nq as f64 / queries as f64),
            format!("{:.1}x", nq as f64 / iq.max(1) as f64),
            format!("{idx_ins:.1}"),
            format!("{naive_ins:.1}"),
            idx.space_pages().to_string(),
            naive.space_pages().to_string(),
        ]);
    }
    vec![t]
}

/// E10 — §2.2's strategy comparison on one workload.
pub fn e10_class_strategies() -> Vec<Table> {
    let mut t = Table::new(
        "E10 — §2.2 (class-indexing strategy trade-offs)",
        "All four strategies on one workload: c=255 balanced, n=100k, B=16.",
        &[
            "strategy",
            "selective q I/O",
            "selective t",
            "broad q I/O",
            "broad t",
            "insert I/O",
            "pages",
        ],
    );
    let geo = Geometry::new(16);
    let c = 255;
    let h = workloads::hierarchy(HierarchyShape::Balanced, c, 5);
    let n = 100_000;
    let objects = workloads::uniform_objects(&h, n, 0xE10, 1_000_000);
    // A leaf class (selective) and the root (broad).
    let leaf = (0..c).find(|&x| h.children(x).is_empty()).unwrap();
    let root = h.roots()[0];

    let counters: Vec<IoCounter> = (0..4).map(|_| IoCounter::new()).collect();
    let mut strategies: Vec<Box<dyn ClassIndex>> = vec![
        Box::new(SingleIndexBaseline::new(
            h.clone(),
            geo,
            counters[0].clone(),
        )),
        Box::new(FullExtentBaseline::new(h.clone(), geo, counters[1].clone())),
        Box::new(RangeTreeClassIndex::new(
            h.clone(),
            geo,
            counters[2].clone(),
        )),
        Box::new(RakeClassIndex::new(h.clone(), geo, counters[3].clone())),
    ];
    for (s, counter) in strategies.iter_mut().zip(&counters) {
        let before = counter.snapshot();
        for o in &objects {
            s.insert(*o);
        }
        let ins = counter.since(before).total() as f64 / n as f64;
        let before = counter.snapshot();
        let sel = s.query(leaf, 0, 500_000);
        let sel_io = counter.since(before).reads;
        let before = counter.snapshot();
        let broad = s.query(root, 0, 500_000);
        let broad_io = counter.since(before).reads;
        t.row(vec![
            s.name().to_string(),
            sel_io.to_string(),
            sel.len().to_string(),
            broad_io.to_string(),
            broad.len().to_string(),
            format!("{ins:.1}"),
            s.space_pages().to_string(),
        ]);
    }
    vec![t]
}

/// E11 — Figs. 8–10: structural statistics of the metablock tree.
pub fn e11_structure_shape() -> Vec<Table> {
    let mut t = Table::new(
        "E11 — Figs. 8–10 (metablock tree anatomy)",
        "Metablock counts, heights and page breakdown; every non-leaf holds exactly B² points.",
        &[
            "B",
            "n",
            "metablocks",
            "leaves",
            "height",
            "pages",
            "TS pages",
            "corner pages",
            "pages/(n/B)",
        ],
    );
    for &b in &[16usize, 64] {
        for &n in &[10_000usize, 100_000, 400_000] {
            let geo = Geometry::new(b);
            let ivs = workloads::uniform_intervals(n, 0xE11, 4 * n as i64, 5_000);
            let tree =
                MetablockTree::build(geo, IoCounter::new(), workloads::interval_points(&ivs));
            let s = tree.stats();
            t.row(vec![
                b.to_string(),
                n.to_string(),
                s.metablocks.to_string(),
                s.leaves.to_string(),
                s.height.to_string(),
                s.pages.to_string(),
                s.ts_pages.to_string(),
                s.corner_pages.to_string(),
                format!("{:.2}", s.pages as f64 / geo.out_blocks(n) as f64),
            ]);
        }
    }
    vec![t]
}

/// E12 — §5: the metablock tree vs a dynamized-\[17\]-style PST on diagonal
/// queries: `log_B n` vs `log2 n` search terms.
pub fn e12_pst_vs_metablock() -> Vec<Table> {
    let mut t = Table::new(
        "E12 — §5 (metablock tree vs external PST on diagonal queries)",
        "Same data, same queries: the metablock search term scales as log_B n, the PST as log2 n.",
        &[
            "B",
            "n",
            "avg t",
            "metablock avg I/O",
            "PST avg I/O",
            "log_B n",
            "log2 n",
        ],
    );
    for &b in &[16usize, 64, 256] {
        let n = 400_000usize;
        let geo = Geometry::new(b);
        let ivs = workloads::uniform_intervals(n, 0xE12, 8 * n as i64, 200);
        let pts = workloads::interval_points(&ivs);
        let mc = IoCounter::new();
        let tree = MetablockTree::build(geo, mc.clone(), pts.clone());
        let pc = IoCounter::new();
        let pst = ExternalPst::build(geo, pc.clone(), pts);
        let mut r = workloads::rng(12);
        let queries = 64;
        let (mut mio, mut pio, mut sum_t) = (0u64, 0u64, 0usize);
        for _ in 0..queries {
            let q = r.gen_range(0..8 * n as i64);
            let before = mc.snapshot();
            let a = tree.query(q);
            mio += mc.since(before).reads;
            let before = pc.snapshot();
            let mut out = Vec::new();
            pst.diagonal_into(q, &mut out);
            pio += pc.since(before).reads;
            assert_eq!(a.len(), out.len());
            sum_t += a.len();
        }
        t.row(vec![
            b.to_string(),
            n.to_string(),
            (sum_t / queries).to_string(),
            format!("{:.1}", mio as f64 / queries as f64),
            format!("{:.1}", pio as f64 / queries as f64),
            geo.log_b(n).to_string(),
            Geometry::log2(n).to_string(),
        ]);
    }
    vec![t]
}

/// B+-tree reference numbers (§1.1), used as the yardstick row in reports.
pub fn e0_bptree_reference() -> Vec<Table> {
    let mut t = Table::new(
        "E0 — §1.1 (B+-tree yardstick)",
        "External 1-D range search: query O(log_B n + t/B), insert O(log_B n), space O(n/B).",
        &[
            "B(leaf)",
            "n",
            "avg q I/O",
            "max q I/O",
            "insert I/O",
            "pages",
            "pages/(n/B)",
        ],
    );
    let page_size = 1024usize;
    let leaf_cap = (page_size - 7) / 24;
    for &n in &[10_000usize, 100_000, 500_000] {
        let counter = IoCounter::new();
        let mut disk = Disk::new(page_size, counter.clone());
        let entries: Vec<Entry> = (0..n as i64).map(|k| Entry::new(k, k as u64)).collect();
        let tree = BPlusTree::bulk_load(&mut disk, &entries);
        let mut r = workloads::rng(0);
        let queries = 64;
        let (mut sum, mut max) = (0u64, 0u64);
        for _ in 0..queries {
            let a = r.gen_range(0..n as i64);
            let before = counter.snapshot();
            let _ = tree.range(&disk, a, a + 2_000);
            let c = counter.since(before).reads;
            sum += c;
            max = max.max(c);
        }
        let before = counter.snapshot();
        let mut tree2 = BPlusTree::new(&mut disk);
        for k in 0..10_000i64 {
            tree2.insert(&mut disk, k, k as u64);
        }
        let ins = counter.since(before).total() as f64 / 10_000.0;
        let pages = tree.validate_unbilled(&disk);
        t.row(vec![
            leaf_cap.to_string(),
            n.to_string(),
            format!("{:.1}", sum as f64 / queries as f64),
            max.to_string(),
            format!("{ins:.1}"),
            pages.to_string(),
            format!("{:.2}", pages as f64 / (n as f64 / leaf_cap as f64)),
        ]);
    }
    vec![t]
}

/// E13 — ablation of the metablock tree's design choices: Lemma 3.1 corner
/// structures and the Fig. 17 TS shortcut.
pub fn e13_ablation() -> Vec<Table> {
    let b = 32;
    let geo = Geometry::new(b);
    let n = 200_000usize;
    let configs = [(true, true), (false, true), (true, false), (false, false)];

    // Regime 1 — corner structures. Short intervals make stabbing answers
    // small, so the query corner lands inside a full metablock and Lemma 3.1
    // is what keeps the Type II visit at O(t/B) instead of O(B) blocks.
    let mut t1 = Table::new(
        "E13a — ablation: corner structures (Lemma 3.1)",
        "Short intervals, point-sized answers: without corner structures the corner metablock is scanned.",
        &["B", "n", "corners", "TS", "avg t", "avg I/O", "max I/O", "pages"],
    );
    let ivs = workloads::uniform_intervals(n, 0xE13, 4 * n as i64, 200);
    let pts = workloads::interval_points(&ivs);
    let mut reference: Option<Vec<usize>> = None;
    for (corners, ts) in configs {
        let options = DiagOptions {
            corner_structures: corners,
            ts_shortcut: ts,
        };
        let counter = IoCounter::new();
        let tree = MetablockTree::build_with(geo, counter.clone(), pts.clone(), options);
        let mut r = workloads::rng(131);
        let queries = 96;
        let (mut sum, mut max, mut sum_t) = (0u64, 0u64, 0usize);
        let mut sizes = Vec::new();
        for _ in 0..queries {
            let q = r.gen_range(0..4 * n as i64);
            let before = counter.snapshot();
            let out = tree.query(q);
            let cost = counter.since(before).reads;
            sizes.push(out.len());
            sum += cost;
            max = max.max(cost);
            sum_t += out.len();
        }
        match &reference {
            None => reference = Some(sizes),
            Some(rf) => assert_eq!(rf, &sizes, "ablation changed answers"),
        }
        t1.row(vec![
            b.to_string(),
            n.to_string(),
            corners.to_string(),
            ts.to_string(),
            (sum_t / queries).to_string(),
            format!("{:.1}", sum as f64 / queries as f64),
            max.to_string(),
            tree.space_pages().to_string(),
        ]);
    }

    // Regime 2 — the TS shortcut. A mixture workload: mostly tiny intervals
    // (they fill the slabs and die below the query) plus a sprinkling of
    // long ones (every slab's metablock straddles the query bottom with a
    // handful of answers). Without TS, each straddling sibling costs its
    // own block reads, unbacked by output.
    let mut t2 = Table::new(
        "E13b — ablation: TS sibling snapshots (Fig. 17)",
        "Sprinkled long intervals: many straddling siblings, few answers each.",
        &["B", "n", "corners", "TS", "avg t", "avg I/O", "max I/O"],
    );
    let mut r = workloads::rng(0x213);
    let mix: Vec<Point> = (0..n)
        .map(|i| {
            let lo = r.gen_range(0..4 * n as i64);
            let len = if i % 64 == 0 {
                r.gen_range(0..(n / 2) as i64) // the sprinkling
            } else {
                r.gen_range(0..50i64)
            };
            Point::new(lo, lo + len, i as u64)
        })
        .collect();
    let mut reference: Option<Vec<usize>> = None;
    for (corners, ts) in configs {
        let options = DiagOptions {
            corner_structures: corners,
            ts_shortcut: ts,
        };
        let counter = IoCounter::new();
        let tree = MetablockTree::build_with(geo, counter.clone(), mix.clone(), options);
        let mut r = workloads::rng(132);
        let queries = 96;
        let (mut sum, mut max, mut sum_t) = (0u64, 0u64, 0usize);
        let mut sizes = Vec::new();
        for _ in 0..queries {
            let q = r.gen_range(0..4 * n as i64);
            let before = counter.snapshot();
            let out = tree.query(q);
            let cost = counter.since(before).reads;
            sizes.push(out.len());
            sum += cost;
            max = max.max(cost);
            sum_t += out.len();
        }
        match &reference {
            None => reference = Some(sizes),
            Some(rf) => assert_eq!(rf, &sizes, "ablation changed answers"),
        }
        t2.row(vec![
            b.to_string(),
            n.to_string(),
            corners.to_string(),
            ts.to_string(),
            (sum_t / queries).to_string(),
            format!("{:.1}", sum as f64 / queries as f64),
            max.to_string(),
        ]);
    }
    vec![t1, t2]
}

/// E14 — write-path tuning: the `Tuning` knobs on the E9 workload.
///
/// One row per configuration; the shipped `Tuning::default()` is the row
/// that dominates the paper's constants on insert and space without giving
/// up stabbing-query I/O.
pub fn e14_write_tuning() -> Vec<Table> {
    let mut t = Table::new(
        "E14 — write-path tuning (batched reorganisation + space knobs)",
        "Update batching amortises level-I; α and the TS budget trade query slack for space.",
        &[
            "batch",
            "td",
            "ts pages",
            "α",
            "n",
            "q I/O",
            "ins I/O",
            "pages",
            "pages/scan",
        ],
    );
    let b = 32;
    let geo = Geometry::new(b);
    let n = 200_000usize;
    let ivs = workloads::uniform_intervals(n, 0xE9, 4 * n as i64, 2_000);
    let configs: &[ccix_core::Tuning] = &[
        // The paper's constants, then each knob family in isolation on top
        // of them, then the shipped default, then an aggressive corner.
        ccix_core::Tuning::paper(),
        ccix_core::Tuning {
            ts_snapshot_pages: None,
            ..ccix_core::Tuning::default()
        },
        ccix_core::Tuning {
            ts_snapshot_pages: Some(16),
            ..ccix_core::Tuning::default()
        },
        ccix_core::Tuning::default(),
        ccix_core::Tuning {
            corner_alpha: 3,
            ..ccix_core::Tuning::default()
        },
        ccix_core::Tuning {
            update_batch_pages: 8,
            td_batch_pages: 4,
            corner_alpha: 4,
            ..ccix_core::Tuning::default()
        },
    ];
    for &tuning in configs {
        let options = ccix_interval::IntervalOptions {
            tuning,
            ..Default::default()
        };
        let ic = IoCounter::new();
        let idx = IndexBuilder::new(geo)
            .options(options)
            .bulk(ic.clone(), &ivs);
        let mut r = workloads::rng(9);
        let queries = 32;
        let mut iq = 0u64;
        for _ in 0..queries {
            let q = r.gen_range(0..4 * n as i64);
            let before = ic.snapshot();
            let _ = idx.stabbing(q);
            iq += ic.since(before).reads;
        }
        let ic2 = IoCounter::new();
        let mut idx2 = IndexBuilder::new(geo).options(options).open(ic2.clone());
        let before = ic2.snapshot();
        for iv in ivs.iter().take(20_000) {
            idx2.insert(iv.lo, iv.hi, iv.id);
        }
        let ins = ic2.since(before).total() as f64 / 20_000.0;
        t.row(vec![
            tuning.update_batch_pages.to_string(),
            tuning.td_batch_pages.to_string(),
            tuning
                .ts_snapshot_pages
                .map_or("B".into(), |p| p.to_string()),
            tuning.corner_alpha.to_string(),
            n.to_string(),
            format!("{:.1}", iq as f64 / queries as f64),
            format!("{ins:.1}"),
            idx.space_pages().to_string(),
            format!("{:.2}", idx.space_pages() as f64 / geo.out_blocks(n) as f64),
        ]);
    }
    vec![t]
}

/// EQB — PR 3's batched multi-query engine: single vs amortised stabbing
/// I/O on the `workloads::*_flood` families, plus the corner-build
/// wall-clock smoke for the Fenwick-selection fix.
///
/// The budgets the perf gate enforces on the n=500k, B=32 rows: uniform
/// single-query ≤ 12 I/Os, adversarial-correlated flood ≤ 6 I/Os amortised
/// at batch = 64.
pub fn eqb_query_batch() -> Vec<Table> {
    let mut t = Table::new(
        "EQB — batched multi-query engine (stabbing floods)",
        "A sorted flood over one pinned read context bills each shared descent block once per residency.",
        &[
            "B",
            "n",
            "workload",
            "batch",
            "avg t",
            "single q I/O",
            "amortised q I/O",
            "batch speedup",
        ],
    );
    let b = 32;
    let geo = Geometry::new(b);
    let batch = 64usize;
    for &n in &[100_000usize, 500_000] {
        let range = 4 * n as i64;
        let ivs = workloads::uniform_intervals(n, 0xE9, range, 2_000);
        let ic = IoCounter::new();
        let idx = IndexBuilder::new(geo).bulk(ic.clone(), &ivs);
        let floods: Vec<(&str, Vec<i64>)> = vec![
            ("uniform", workloads::uniform_flood(batch, 0xEB1, range)),
            ("skewed-8", workloads::skewed_flood(batch, 0xEB2, range, 8)),
            (
                "correlated-2k",
                workloads::correlated_flood(batch, 0xEB3, range, 2_000),
            ),
        ];
        for (name, qs) in floods {
            let before = ic.snapshot();
            let mut sum_t = 0usize;
            for &q in &qs {
                sum_t += idx.stabbing(q).len();
            }
            let single = ic.since(before).reads as f64 / batch as f64;
            let before = ic.snapshot();
            let outs = idx.stab_batch(&qs);
            let amortised = ic.since(before).reads as f64 / batch as f64;
            let batch_t: usize = outs.iter().map(Vec::len).sum();
            assert_eq!(batch_t, sum_t, "batched flood disagrees with singles");
            t.row(vec![
                b.to_string(),
                n.to_string(),
                name.to_string(),
                batch.to_string(),
                (sum_t / batch).to_string(),
                format!("{single:.1}"),
                format!("{amortised:.1}"),
                format!("{:.1}x", single / amortised.max(0.01)),
            ]);
        }
    }

    let mut w = Table::new(
        "EQB-build — corner-structure build wall-clock",
        "CornerStructure::build stays off the wall-clock profile at large B (Fenwick selection: precomputed ranks + maintained live total).",
        &["B", "|S|", "build ms"],
    );
    for &bb in &[256usize, 1024] {
        let s = 2 * bb * bb;
        let ivs = workloads::uniform_intervals(s, 0xEBB + bb as u64, 4 * s as i64, 10_000);
        let pts = workloads::interval_points(&ivs);
        let counter = IoCounter::new();
        let mut store = TypedStore::new(bb, counter);
        let started = std::time::Instant::now();
        let cs = ccix_core::CornerStructure::build(&mut store, &pts);
        let ms = started.elapsed().as_millis();
        assert_eq!(cs.len(), s);
        w.row(vec![bb.to_string(), s.to_string(), ms.to_string()]);
    }
    vec![t, w]
}

/// EB — the merge-based reorganisation pipeline's wall clock: static build
/// plus a rebuild-heavy insert flood (level-I merges, TS reorganisations,
/// level-II push-downs and branching splits all fire), at 1 thread and at
/// the machine's available parallelism.
///
/// I/O counts are identical across thread counts (planning is the only
/// parallel phase; every page allocation stays on the calling thread), so
/// this table is gated on **absolute wall-clock ceilings only** — timings
/// are noisy where I/O counts are exact (see `perf_gate`).
pub fn eb_build() -> Vec<Table> {
    let mut t = Table::new(
        "EB — rebuild-pipeline wall clock (build + insert flood)",
        "Sortedness-preserving merges + parallel build planning: (re)builds scale with cores, not n·log n re-sorting.",
        &[
            "tree", "B", "n", "threads", "build ms", "build I/O", "flood", "flood ms",
        ],
    );
    let b = 32;
    let geo = Geometry::new(b);
    let thread_cfgs: [(&str, usize); 2] = [("1", 1), ("max", 0)];
    for &n in &[100_000usize, 500_000, 2_100_000] {
        let flood_n = (n / 10).min(60_000);
        let ivs = workloads::uniform_intervals(n + flood_n, 0xEB0 + n as u64, 4 * n as i64, 2_000);
        let base = workloads::interval_points(&ivs[..n]);
        for (label, threads) in thread_cfgs {
            let tuning = ccix_core::Tuning {
                build_threads: threads,
                ..ccix_core::Tuning::default()
            };
            let counter = IoCounter::new();
            let probe = ccix_testkit::iocheck::IoProbe::start(&counter, "EB diag build");
            let mut tree = MetablockTree::build_tuned(
                geo,
                counter.clone(),
                base.clone(),
                DiagOptions::default(),
                tuning,
            );
            let (build_io, build_span) = probe.finish_timed();
            let probe = ccix_testkit::iocheck::IoProbe::start(&counter, "EB diag flood");
            for iv in &ivs[n..] {
                tree.insert(Point::new(iv.lo, iv.hi, iv.id));
            }
            let (_, flood_span) = probe.finish_timed();
            t.row(vec![
                "diag".into(),
                b.to_string(),
                n.to_string(),
                label.to_string(),
                build_span.as_millis().to_string(),
                build_io.total().to_string(),
                flood_n.to_string(),
                flood_span.as_millis().to_string(),
            ]);
        }
    }
    // The 3-sided tree exercises the PST planning + layout-reuse side of the
    // pipeline; its flood rebuilds per-metablock and children PSTs.
    for &n in &[100_000usize, 500_000] {
        let flood_n = n / 10;
        let pts = workloads::uniform_points(n + flood_n, 0xEB5 + n as u64, 4 * n as i64);
        for (label, threads) in thread_cfgs {
            let tuning = ccix_core::Tuning {
                build_threads: threads,
                ..ccix_core::Tuning::default()
            };
            let counter = IoCounter::new();
            let probe = ccix_testkit::iocheck::IoProbe::start(&counter, "EB 3sided build");
            let mut tree = ccix_core::ThreeSidedTree::build_tuned(
                geo,
                counter.clone(),
                pts[..n].to_vec(),
                tuning,
            );
            let (build_io, build_span) = probe.finish_timed();
            let probe = ccix_testkit::iocheck::IoProbe::start(&counter, "EB 3sided flood");
            for p in &pts[n..] {
                tree.insert(*p);
            }
            let (_, flood_span) = probe.finish_timed();
            t.row(vec![
                "3sided".into(),
                b.to_string(),
                n.to_string(),
                label.to_string(),
                build_span.as_millis().to_string(),
                build_io.total().to_string(),
                flood_n.to_string(),
                flood_span.as_millis().to_string(),
            ]);
        }
    }
    vec![t]
}

/// ED — deletion support: the tombstone write path under delete and mixed
/// floods (the paper's §5 open problem, closed in this reproduction).
///
/// Four phases per `n`, all seeded and exactly reproducible:
///
/// * **delete-flood** — serial deletes of 10% random-ish victims from a
///   bulk-built index; the amortised cost per delete must stay within the
///   E9 *insert* budget (deletes ride the insert machinery);
/// * **delete-batch64** — the same volume as correlated batches of 64
///   through [`IntervalIndex::delete_batch`] (one pinned routing context
///   per batch);
/// * **mixed-45-35-20** — an empty index driven by
///   `workloads::mixed_interval_flood` (45% inserts, 35% deletes, 20%
///   stabbing queries), the workload shape the insert-only suite could not
///   express; the `q I/O` column is the mid-flood stabbing cost with
///   tombstone buffers live;
/// * **drain-to-10pct** (largest `n` only) — batched deletes down to 10%
///   occupancy; the `pages` column pins the occupancy-triggered shrink.
pub fn ed_delete() -> Vec<Table> {
    let mut t = Table::new(
        "ED — deletion support (tombstone write path, mixed floods)",
        "Deletes are amortised within the insert budget; queries filter tombstones; shrink bounds space.",
        &[
            "B",
            "n",
            "phase",
            "ops",
            "amortised I/O",
            "q I/O",
            "pending",
            "pages",
            "ms",
        ],
    );
    let b = 32usize;
    let geo = Geometry::new(b);
    // Average stabbing-read cost over a fixed probe flood.
    fn avg_q(idx: &IntervalIndex, ic: &IoCounter, range: i64) -> f64 {
        let mut r = workloads::rng(0xED0);
        let queries = 32u64;
        let mut reads = 0u64;
        for _ in 0..queries {
            let q = r.gen_range(0..range);
            let before = ic.snapshot();
            let _ = idx.stabbing(q);
            reads += ic.since(before).reads;
        }
        reads as f64 / queries as f64
    }
    for &n in &[100_000usize, 500_000] {
        let range = 4 * n as i64;
        let ivs = workloads::uniform_intervals(n, 0xED, range, 2_000);
        let n_del = n / 10;

        // Phase 1 — serial delete flood.
        {
            let ic = IoCounter::new();
            let mut idx = IndexBuilder::new(geo).bulk(ic.clone(), &ivs);
            let probe = ccix_testkit::iocheck::IoProbe::start(&ic, "ED serial deletes");
            for i in 0..n_del {
                let iv = ivs[i * 10];
                idx.delete(iv.lo, iv.hi, iv.id);
            }
            let (d, span) = probe.finish_timed();
            t.row(vec![
                b.to_string(),
                n.to_string(),
                "delete-flood".into(),
                n_del.to_string(),
                format!("{:.1}", d.total() as f64 / n_del as f64),
                format!("{:.1}", avg_q(&idx, &ic, range)),
                idx.pending_deletes().to_string(),
                idx.space_pages().to_string(),
                span.as_millis().to_string(),
            ]);
        }

        // Phase 2 — correlated batches of 64.
        {
            let ic = IoCounter::new();
            let mut idx = IndexBuilder::new(geo).bulk(ic.clone(), &ivs);
            let mut victims: Vec<&ccix_interval::Interval> = ivs.iter().step_by(10).collect();
            victims.sort_unstable_by_key(|iv| (iv.lo, iv.id));
            let probe = ccix_testkit::iocheck::IoProbe::start(&ic, "ED batched deletes");
            for chunk in victims.chunks(64) {
                let batch: Vec<(i64, i64, u64)> =
                    chunk.iter().map(|iv| (iv.lo, iv.hi, iv.id)).collect();
                idx.delete_batch(&batch);
            }
            let (d, span) = probe.finish_timed();
            t.row(vec![
                b.to_string(),
                n.to_string(),
                "delete-batch64".into(),
                victims.len().to_string(),
                format!("{:.1}", d.total() as f64 / victims.len() as f64),
                format!("{:.1}", avg_q(&idx, &ic, range)),
                idx.pending_deletes().to_string(),
                idx.space_pages().to_string(),
                span.as_millis().to_string(),
            ]);
        }

        // Phase 3 — mixed flood from empty (45% ins / 35% del / 20% stab).
        {
            let n_ops = n / 2;
            let ops = workloads::mixed_interval_flood(n_ops, 0xED3, range, 2_000, 35, 20);
            let ic = IoCounter::new();
            let mut idx = IndexBuilder::new(geo).open(ic.clone());
            let probe = ccix_testkit::iocheck::IoProbe::start(&ic, "ED mixed flood");
            let (mut q_reads, mut q_count) = (0u64, 0u64);
            for op in &ops {
                match *op {
                    workloads::IntervalOp::Insert(iv) => idx.insert(iv.lo, iv.hi, iv.id),
                    workloads::IntervalOp::Delete(iv) => idx.delete(iv.lo, iv.hi, iv.id),
                    workloads::IntervalOp::Stab(q) => {
                        let before = ic.snapshot();
                        let _ = idx.stabbing(q);
                        q_reads += ic.since(before).reads;
                        q_count += 1;
                    }
                }
            }
            let (d, span) = probe.finish_timed();
            t.row(vec![
                b.to_string(),
                n.to_string(),
                "mixed-45-35-20".into(),
                n_ops.to_string(),
                format!("{:.1}", d.total() as f64 / n_ops as f64),
                format!("{:.1}", q_reads as f64 / q_count.max(1) as f64),
                idx.pending_deletes().to_string(),
                idx.space_pages().to_string(),
                span.as_millis().to_string(),
            ]);
        }

        // Phase 4 — drain to 10% occupancy (largest n only): the shrink.
        if n == 500_000 {
            let ic = IoCounter::new();
            let mut idx = IndexBuilder::new(geo).bulk(ic.clone(), &ivs);
            let drain = 9 * n / 10;
            let probe = ccix_testkit::iocheck::IoProbe::start(&ic, "ED drain");
            for chunk in ivs[..drain].chunks(256) {
                let batch: Vec<(i64, i64, u64)> =
                    chunk.iter().map(|iv| (iv.lo, iv.hi, iv.id)).collect();
                idx.delete_batch(&batch);
            }
            let (d, span) = probe.finish_timed();
            t.row(vec![
                b.to_string(),
                n.to_string(),
                "drain-to-10pct".into(),
                drain.to_string(),
                format!("{:.1}", d.total() as f64 / drain as f64),
                format!("{:.1}", avg_q(&idx, &ic, range)),
                idx.pending_deletes().to_string(),
                idx.space_pages().to_string(),
                span.as_millis().to_string(),
            ]);
        }
    }
    vec![t]
}

/// EL — per-operation latency under incremental reorganisation: the
/// stop-the-world pause and its cure.
///
/// A bulk-built diagonal metablock tree (the stabbing structure behind
/// [`IntervalIndex`]) is driven through a delete-heavy flood deep enough to
/// trip the occupancy shrink, with a sprinkle of inserts to exercise the
/// frozen-side divert. Every operation is timed and I/O-metered
/// individually; the table reports the per-op distribution (p50 / p99 /
/// max) in exact I/Os and in wall-clock time, one row per
/// [`Tuning::reorg_pages_per_op`] budget:
///
/// * **k = 0** — the all-at-once legacy behaviour: the shrink rebuilds the
///   whole structure inside one delete, so `max I/O` carries an `O(n/B)`
///   spike (tens of thousands of transfers in a single operation);
/// * **k = 8** — the incremental engine: triggered rebuilds run behind a
///   transfer shunt and are bled at most `k` page transfers per subsequent
///   operation, so `max I/O` collapses to the descent envelope plus `O(k)`.
///
/// The I/O columns are exact and bit-reproducible; the µs/ms columns are
/// wall-clock context (smoke-ceilinged in the gate, never diffed).
pub fn el_latency() -> Vec<Table> {
    let mut t = Table::new(
        "EL — per-op latency under incremental reorganisation",
        "A finite reorg budget bounds the worst single op; k = 0 keeps the stop-the-world spike.",
        &[
            "B", "n", "k", "ops", "p50 I/O", "p99 I/O", "max I/O", "p50 us", "p99 us", "max ms",
            "ms",
        ],
    );
    let b = 32usize;
    let geo = Geometry::new(b);
    let n = 500_000usize;
    let range = 4 * n as i64;
    let ivs = workloads::uniform_intervals(n, 0xE1, range, 2_000);
    let pts: Vec<Point> = ivs
        .iter()
        .map(|iv| Point::new(iv.lo, iv.hi, iv.id))
        .collect();
    let n_ops = 3 * n / 5;

    fn pctl(sorted: &[u64], pct: usize) -> u64 {
        sorted[(sorted.len() - 1) * pct / 100]
    }

    for &k in &[0usize, 8] {
        let tuning = Tuning {
            reorg_pages_per_op: k,
            ..Tuning::default()
        };
        let ic = IoCounter::new();
        let mut tree = MetablockTree::build_tuned(
            geo,
            ic.clone(),
            pts.clone(),
            DiagOptions::default(),
            tuning,
        );
        let mut rng = workloads::rng(0xE15);
        let mut io: Vec<u64> = Vec::with_capacity(n_ops);
        let mut us: Vec<u64> = Vec::with_capacity(n_ops);
        let mut victim = 0usize;
        let mut fresh = 10_000_000u64;
        let flood_started = std::time::Instant::now();
        for step in 0..n_ops {
            let before = ic.snapshot();
            let op_started = std::time::Instant::now();
            if step % 10 == 9 {
                let lo = rng.gen_range(0..range);
                let hi = lo + rng.gen_range(0..2_000i64);
                tree.insert(Point::new(lo, hi, fresh));
                fresh += 1;
            } else {
                let iv = &ivs[victim];
                victim += 1;
                tree.delete(Point::new(iv.lo, iv.hi, iv.id));
            }
            us.push(op_started.elapsed().as_micros() as u64);
            io.push(ic.since(before).total());
        }
        let total = flood_started.elapsed();
        tree.flush_reorgs();
        io.sort_unstable();
        us.sort_unstable();
        t.row(vec![
            b.to_string(),
            n.to_string(),
            k.to_string(),
            n_ops.to_string(),
            pctl(&io, 50).to_string(),
            pctl(&io, 99).to_string(),
            io.last().copied().unwrap_or(0).to_string(),
            pctl(&us, 50).to_string(),
            pctl(&us, 99).to_string(),
            format!("{:.1}", *us.last().unwrap_or(&0) as f64 / 1_000.0),
            total.as_millis().to_string(),
        ]);
    }
    vec![t]
}

/// EC — snapshot-serving throughput: reader threads scale on Arc-published
/// epochs while a writer floods group commits.
///
/// Unlike the I/O tables this one is wall-clock only, so the perf gate
/// applies **absolute** bounds, not relative diffs. The headline column is
/// *scaling loss* at 8 readers: `min(readers, cores) / speedup`, where
/// speedup is qps relative to the single-reader row. Perfect scaling is
/// 1.0; the gate allows 2.0, which on an 8-core runner enforces the ≥ 4×
/// acceptance criterion and on a 1-core box degenerates to ~1 (no
/// parallelism to lose). p99 commit-visibility latency (submit →
/// publication, measured on every commit of the flood) gets an absolute
/// ceiling as well.
///
/// `cores` is `available_parallelism()` **corrected upward by the
/// evidence**: under cgroup quotas or CPU affinity masks the std call can
/// report fewer cores than the scheduler actually grants, and trusting it
/// blindly once made this column print the *reciprocal* of the loss
/// (`1/speedup` — e.g. an impossible 0.21 at 8 readers / 4.78×, below the
/// perfect-scaling floor of 1.0). A measured speedup of `s` is a
/// constructive witness that at least `⌈s⌉` cores were usable, so the rows
/// are computed first and `cores = max(available_parallelism(), ⌊max
/// speedup⌋)` — `⌊·⌋` rather than `⌈·⌉` so measurement noise (an apparent
/// 1.2× on a genuinely serial box) can never inflate the ideal and fail
/// the gate spuriously. The documented formula then can never drop below
/// its 1.0 floor, and on a runner whose core detection works the ≤ 2.0
/// gate still enforces ≥ 4× at 8 readers.
pub fn ec_throughput() -> Vec<Table> {
    use ccix_serve::{Engine, EngineConfig};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
    use std::time::{Duration, Instant};

    let mut t = Table::new(
        "EC — snapshot-serving throughput under writer flood",
        "Readers scale on epoch snapshots; commit visibility stays bounded under group commit.",
        &[
            "B",
            "n",
            "readers",
            "queries",
            "qps",
            "speedup",
            "scaling loss",
            "p99 vis ms",
            "commits",
        ],
    );
    let b = 32usize;
    let n = 200_000usize;
    let range = 4 * n as i64;
    let ivs = workloads::uniform_intervals(n, 0xEC, range, 2_000);
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let measure = Duration::from_millis(250);
    let mut base_qps = 0.0f64;
    // (readers, queries, qps, speedup, p99 vis ms, commits) — rows are
    // measured first and emitted after, because the scaling-loss column
    // needs the max measured speedup to correct a collapsed core count.
    let mut measured: Vec<(usize, u64, f64, f64, f64, usize)> = Vec::new();
    for &readers in &[1usize, 2, 4, 8] {
        let idx = ccix_interval::IndexBuilder::new(Geometry::new(b)).bulk(IoCounter::new(), &ivs);
        let engine = Engine::start(idx, EngineConfig::default());
        let stop = AtomicBool::new(false);
        let queries = AtomicU64::new(0);
        let (commits, mut vis_ms) = std::thread::scope(|scope| {
            // Writer flood: mixed inserts, pipelined a few commits deep so
            // the measured wait is the true submit → visibility latency.
            let flood = scope.spawn(|| {
                let mut rng = workloads::rng(0xEC1);
                let mut fresh = 10_000_000u64;
                let mut pending = std::collections::VecDeque::new();
                let mut vis = Vec::new();
                while !stop.load(Relaxed) {
                    let batch: Vec<ccix_interval::IntervalOp> = (0..64)
                        .map(|_| {
                            let lo = rng.gen_range(0..range);
                            fresh += 1;
                            ccix_interval::IntervalOp::Insert(ccix_interval::Interval::new(
                                lo,
                                lo + rng.gen_range(0..2_000i64),
                                fresh,
                            ))
                        })
                        .collect();
                    pending.push_back((Instant::now(), engine.submit(batch)));
                    while pending.len() >= 4 {
                        let (t0, ticket) = pending.pop_front().expect("nonempty");
                        ticket.wait();
                        vis.push(t0.elapsed().as_secs_f64() * 1_000.0);
                    }
                }
                for (t0, ticket) in pending {
                    ticket.wait();
                    vis.push(t0.elapsed().as_secs_f64() * 1_000.0);
                }
                vis
            });
            for r in 0..readers {
                let engine = &engine;
                let stop = &stop;
                let queries = &queries;
                let mut rng = workloads::rng(0xEC2 + r as u64);
                scope.spawn(move || {
                    let mut local = 0u64;
                    while !stop.load(Relaxed) {
                        let snap = engine.snapshot();
                        // A small burst per snapshot, like a real client.
                        for _ in 0..16 {
                            let out = snap.query(rng.gen_range(0..range));
                            std::hint::black_box(out);
                            local += 1;
                        }
                    }
                    queries.fetch_add(local, Relaxed);
                });
            }
            std::thread::sleep(measure);
            stop.store(true, Relaxed);
            let vis = flood.join().expect("flood thread");
            (vis.len(), vis)
        });
        let done = queries.load(Relaxed);
        let qps = done as f64 / measure.as_secs_f64();
        if readers == 1 {
            base_qps = qps;
        }
        let speedup = qps / base_qps;
        vis_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p99 = if vis_ms.is_empty() {
            0.0
        } else {
            vis_ms[(vis_ms.len() - 1) * 99 / 100]
        };
        measured.push((readers, done, qps, speedup, p99, commits));
        engine.shutdown();
    }
    // A measured speedup of s proves ≥ ⌈s⌉ usable cores even when
    // available_parallelism() is clamped by a cgroup or affinity mask;
    // credit only ⌊s⌋ so noise can't inflate the ideal.
    let witnessed = measured
        .iter()
        .map(|&(_, _, _, s, _, _)| s.floor() as usize)
        .max()
        .unwrap_or(1);
    let cores = avail.max(witnessed).max(1);
    for (readers, done, qps, speedup, p99, commits) in measured {
        let ideal = readers.min(cores) as f64;
        t.row(vec![
            b.to_string(),
            n.to_string(),
            readers.to_string(),
            done.to_string(),
            format!("{qps:.0}"),
            format!("{speedup:.2}"),
            format!("{:.2}", ideal / speedup),
            format!("{p99:.1}"),
            commits.to_string(),
        ]);
    }
    vec![t]
}

/// ES — sharded parallel execution: an x-range routing directory over K
/// independent interval indexes; insert floods and batched stabbing
/// queries are split into per-shard sub-batches and fanned out over the
/// shard-thread pool.
///
/// The aggregate I/O columns are exact and **thread-invariant**: the
/// fan-out only moves per-shard work between threads, and every shard
/// charges its own striped counter, so `flood I/O`/`query I/O` are
/// bit-reproducible and diffed exactly by the perf gate (the `threads 1`
/// and `threads max` rows of a shard count must agree — any divergence is
/// a routing bug, not noise). Wall clock gets absolute smoke ceilings
/// only.
///
/// The headline column is *scaling loss* at max threads vs the
/// 1-shard/1-thread row of the same workload: `min(shards, cores) /
/// speedup`, where speedup is the weaker of the flood-apply and
/// batched-query speedups, and `cores = max(available_parallelism(),
/// ⌊max thread-induced speedup⌋)` — the same clamp-corrected core count
/// EC uses, except the witness compares threads=1 to threads=max at equal
/// shard counts (sharding speeds queries up even sequentially, and that
/// algorithmic gain must not be credited as cores), floored so noise
/// can't inflate the ideal. On an 8-core runner
/// the ≤ 2.0 gate at 8 shards enforces the ≥ 3-4× acceptance criterion;
/// on a 1-core box it degenerates to ~1 (no parallelism to lose).
///
/// Workloads: `uniform` floods spread over all shards; `zipf` floods are
/// Zipf-skewed (exponent 1.1) over *shards*, the tenant-skew regime where
/// one hot shard serialises most of the work.
pub fn es_shard() -> Vec<Table> {
    use std::time::Instant;

    let mut t = Table::new(
        "ES — sharded parallel execution (x-range fan-out)",
        "Aggregate I/O is thread-invariant and exact; wall clock scales with shards × threads.",
        &[
            "workload",
            "shards",
            "threads",
            "n",
            "build ms",
            "flood ms",
            "query ms",
            "flood I/O",
            "query I/O",
            "flood speedup",
            "query speedup",
            "scaling loss",
        ],
    );
    let b = 32usize;
    let n = 200_000usize;
    let range = 4 * n as i64;
    let max_len = 2_000i64;
    let flood_n = 40_000usize;
    let queries = 40_000usize;
    let batch = 1_024usize;
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let base = workloads::uniform_intervals(n, 0xE5, range, max_len);
    let sample: Vec<i64> = base.iter().map(|iv| iv.lo).collect();

    struct Row {
        workload: &'static str,
        shards: usize,
        threads: &'static str,
        build_ms: f64,
        flood_ms: f64,
        query_ms: f64,
        flood_io: u64,
        query_io: u64,
    }
    let mut rows: Vec<Row> = Vec::new();

    for &workload in &["uniform", "zipf"] {
        for &shards in &[1usize, 2, 4, 8] {
            let splits = ccix_interval::split_points_from_sample(&sample, shards);
            let (flood_ivs, stabs) = match workload {
                "uniform" => (
                    workloads::uniform_intervals(flood_n, 0xE51, range, max_len),
                    workloads::uniform_flood(queries, 0xE52, range),
                ),
                _ => (
                    workloads::zipf_shard_intervals(flood_n, 0xE53, &splits, range, max_len, 1.1),
                    workloads::zipf_shard_flood(queries, 0xE53, &splits, range, 1.1),
                ),
            };
            let flood_ops: Vec<ccix_interval::IntervalOp> = flood_ivs
                .iter()
                .map(|iv| {
                    ccix_interval::IntervalOp::Insert(ccix_interval::Interval::new(
                        iv.lo,
                        iv.hi,
                        n as u64 + iv.id,
                    ))
                })
                .collect();
            for (threads, shard_threads) in [("1", 1usize), ("max", 0usize)] {
                let tuning = Tuning {
                    shard_threads,
                    ..Tuning::default()
                };
                let builder = IndexBuilder::new(Geometry::new(b))
                    .tuning(tuning)
                    .sharded()
                    .splits(splits.clone());
                let t0 = Instant::now();
                let mut idx = builder.bulk(&base);
                let build_ms = t0.elapsed().as_secs_f64() * 1e3;

                let before = idx.io_totals();
                let t0 = Instant::now();
                idx.apply_batch(&flood_ops);
                let flood_ms = t0.elapsed().as_secs_f64() * 1e3;
                let flood_io = before.delta(idx.io_totals()).total();

                let before = idx.io_totals();
                let t0 = Instant::now();
                let mut outs = Vec::new();
                for chunk in stabs.chunks(batch) {
                    idx.stab_batch_into(chunk, &mut outs);
                    std::hint::black_box(&outs);
                }
                let query_ms = t0.elapsed().as_secs_f64() * 1e3;
                let query_io = before.delta(idx.io_totals()).total();

                rows.push(Row {
                    workload,
                    shards,
                    threads,
                    build_ms,
                    flood_ms,
                    query_ms,
                    flood_io,
                    query_io,
                });
            }
        }
    }

    // Speedups are against the 1-shard/1-thread row of the same workload.
    let base_times: Vec<(&'static str, f64, f64)> = rows
        .iter()
        .filter(|r| r.shards == 1 && r.threads == "1")
        .map(|r| (r.workload, r.flood_ms, r.query_ms))
        .collect();
    let speedups: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| {
            let &(_, f0, q0) = base_times
                .iter()
                .find(|&&(w, _, _)| w == r.workload)
                .expect("base row measured first");
            (f0 / r.flood_ms, q0 / r.query_ms)
        })
        .collect();
    // Same clamp-corrected core count as EC, but witnessed only from
    // *thread-induced* speedup — the threads=1 vs threads=max ratio at the
    // same (workload, shards), where the algorithmic gains of smaller
    // per-shard trees cancel out (sharding speeds queries up even
    // sequentially, and that must not be credited as cores). Floored so
    // noise can't inflate the ideal.
    let witnessed = rows
        .iter()
        .filter(|r| r.threads == "1")
        .filter_map(|r1| {
            let rm = rows.iter().find(|r| {
                r.workload == r1.workload && r.shards == r1.shards && r.threads == "max"
            })?;
            let f = r1.flood_ms / rm.flood_ms;
            let q = r1.query_ms / rm.query_ms;
            Some(f.max(q).floor() as usize)
        })
        .max()
        .unwrap_or(1);
    let cores = avail.max(witnessed).max(1);
    for (r, (flood_su, query_su)) in rows.iter().zip(speedups) {
        let ideal = r.shards.min(cores) as f64;
        t.row(vec![
            r.workload.to_string(),
            r.shards.to_string(),
            r.threads.to_string(),
            n.to_string(),
            format!("{:.0}", r.build_ms),
            format!("{:.1}", r.flood_ms),
            format!("{:.1}", r.query_ms),
            r.flood_io.to_string(),
            r.query_io.to_string(),
            format!("{flood_su:.2}"),
            format!("{query_su:.2}"),
            format!("{:.2}", ideal / flood_su.min(query_su)),
        ]);
    }
    vec![t]
}

/// ER — durability: durable-commit overhead vs the volatile path, and
/// recovery wall-clock vs WAL length.
pub fn er_recovery() -> Vec<Table> {
    use ccix_durable::{DurabilityConfig, DurableStore, FsyncPolicy, Meta, TempDir};
    use ccix_serve::{Engine, EngineConfig};
    use std::time::Instant;

    let b = 32usize;

    // -- ER: per-commit submit -> ack latency under each fsync policy.
    let mut t = Table::new(
        "ER — durable-commit overhead vs volatile",
        "Group-committed WAL keeps durable p99 commit latency within 2x the volatile path.",
        &[
            "mode",
            "commits",
            "batch",
            "p50 ms",
            "p99 ms",
            "overhead p99",
            "wall ms",
        ],
    );
    let n = 20_000usize;
    let range = 4 * n as i64;
    let commits = 300usize;
    let batch = 64usize;
    let initial = workloads::uniform_intervals(n, 0xE6_0001, range, 2_000);
    // One pre-generated batch stream, shared by every mode.
    let mut rng = workloads::rng(0xE6_0002);
    let mut fresh = 10_000_000u64;
    let stream: Vec<Vec<ccix_interval::IntervalOp>> = (0..commits)
        .map(|_| {
            (0..batch)
                .map(|_| {
                    let lo = rng.gen_range(0..range);
                    fresh += 1;
                    ccix_interval::IntervalOp::Insert(ccix_interval::Interval::new(
                        lo,
                        lo + rng.gen_range(0..2_000i64),
                        fresh,
                    ))
                })
                .collect()
        })
        .collect();
    let mut volatile_p99 = 0.0f64;
    let modes: [(&str, Option<FsyncPolicy>); 4] = [
        ("volatile", None),
        ("fsync-1", Some(FsyncPolicy::EveryCommits(1))),
        ("fsync-8", Some(FsyncPolicy::EveryCommits(8))),
        ("fsync-group", Some(FsyncPolicy::Group { max_delay_ms: 10 })),
    ];
    for (mode, fsync) in modes {
        let tmp = TempDir::new("er-commit");
        let durability = fsync.map(|fsync| DurabilityConfig {
            fsync,
            ..DurabilityConfig::new(tmp.path())
        });
        let idx =
            ccix_interval::IndexBuilder::new(Geometry::new(b)).bulk(IoCounter::new(), &initial);
        let engine = Engine::start(
            idx,
            EngineConfig {
                durability,
                ..EngineConfig::default()
            },
        );
        let t0 = Instant::now();
        // Pipeline a few commits deep (like a real client) so fsyncs can
        // group, while still measuring true submit -> durable-ack latency.
        let mut pending = std::collections::VecDeque::new();
        let mut lat_ms = Vec::with_capacity(commits);
        for ops in &stream {
            pending.push_back((Instant::now(), engine.submit(ops.clone())));
            while pending.len() >= 4 {
                let (s0, ticket) = pending.pop_front().expect("nonempty");
                ticket.wait();
                lat_ms.push(s0.elapsed().as_secs_f64() * 1_000.0);
            }
        }
        for (s0, ticket) in pending {
            ticket.wait();
            lat_ms.push(s0.elapsed().as_secs_f64() * 1_000.0);
        }
        let wall = t0.elapsed().as_secs_f64() * 1_000.0;
        engine.shutdown();
        lat_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let p50 = lat_ms[lat_ms.len() / 2];
        let p99 = lat_ms[(lat_ms.len() - 1) * 99 / 100];
        if mode == "volatile" {
            volatile_p99 = p99;
        }
        // Overhead vs a 1 ms floor: on fast disks the volatile p99 is tens
        // of microseconds and a raw ratio would gate on noise.
        let overhead = p99 / volatile_p99.max(1.0);
        t.row(vec![
            mode.to_string(),
            commits.to_string(),
            batch.to_string(),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
            format!("{overhead:.2}"),
            format!("{wall:.0}"),
        ]);
    }

    // -- ER-recover: replay wall-clock against WAL length. The WAL is
    // built through the store directly (a clean engine shutdown would
    // checkpoint and truncate it — exactly what a crash does not do).
    let mut r = Table::new(
        "ER-recover — recovery wall clock vs WAL length",
        "Recovery replays the WAL suffix deterministically; 100k ops stay far under the 2 s smoke ceiling.",
        &["wal ops", "commits", "wal KB", "recover ms", "replayed ops"],
    );
    for &wal_ops in &[10_000usize, 100_000] {
        let tmp = TempDir::new("er-recover");
        let dcfg = DurabilityConfig {
            checkpoint_every_ops: 0,
            ..DurabilityConfig::new(tmp.path())
        };
        let meta = Meta::new(Geometry::new(b), ccix_interval::IntervalOptions::default());
        let mut store = DurableStore::create(&dcfg, meta, &[], &[]).expect("create durable dir");
        let per_commit = 100usize;
        let mut rng = workloads::rng(0xE6_0003);
        let mut id = 0u64;
        for _ in 0..wal_ops / per_commit {
            let ops: Vec<ccix_interval::IntervalOp> = (0..per_commit)
                .map(|_| {
                    let lo = rng.gen_range(0..range);
                    id += 1;
                    ccix_interval::IntervalOp::Insert(ccix_interval::Interval::new(
                        lo,
                        lo + rng.gen_range(0..2_000i64),
                        id,
                    ))
                })
                .collect();
            store.append_commit(&ops).expect("append");
        }
        store.sync().expect("sync");
        let wal_kb = store.wal_bytes() / 1024;
        drop(store); // die without checkpointing, as a crash would
        let t0 = Instant::now();
        let (engine, report) = Engine::recover(
            meta,
            EngineConfig {
                durability: Some(dcfg),
                ..EngineConfig::default()
            },
        )
        .expect("recover");
        let ms = t0.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(engine.snapshot().ops_applied(), wal_ops as u64);
        engine.shutdown();
        r.row(vec![
            wal_ops.to_string(),
            (wal_ops / per_commit).to_string(),
            wal_kb.to_string(),
            format!("{ms:.0}"),
            report.replayed_ops.to_string(),
        ]);
    }
    vec![t, r]
}

/// EF — the file backend vs the in-memory model, wall clock. The billed
/// I/O counts are identical by construction (the backends differential
/// suite asserts it exactly), so this table measures what the model
/// cannot: the real cost of the write-through mirror on build and flood,
/// and the cold/warm split of the in-process page cache on stabs.
pub fn ef_file() -> Vec<Table> {
    use ccix_durable::TempDir;
    use std::time::Instant;

    let b = 4_096usize;
    let n = 200_000usize;
    let range = 4 * n as i64;
    let initial = workloads::uniform_intervals(n, 0xEF_0001, range, 2_000);
    // One pre-generated flood and stab stream shared by both backends.
    let flood: Vec<workloads::IntervalOp> = {
        let raw = workloads::mixed_interval_flood(20_000, 0xEF_0002, range, 2_000, 30, 0);
        // The flood numbers ids from 0; shift clear of the initial set.
        raw.into_iter()
            .map(|op| match op {
                workloads::IntervalOp::Insert(iv) => workloads::IntervalOp::Insert(
                    ccix_interval::Interval::new(iv.lo, iv.hi, iv.id + n as u64),
                ),
                workloads::IntervalOp::Delete(iv) => workloads::IntervalOp::Delete(
                    ccix_interval::Interval::new(iv.lo, iv.hi, iv.id + n as u64),
                ),
                other => other,
            })
            .collect()
    };
    let stabs: Vec<i64> = {
        let mut r = workloads::rng(0xEF_0003);
        (0..2_000).map(|_| r.gen_range(0..range)).collect()
    };

    let mut t = Table::new(
        "EF — file backend vs model (wall clock)",
        "Mirroring every page to a real file: build/flood overhead stays small at B=4096, and repeated stabs hit the in-process page cache (warm) instead of pread (cold).",
        &[
            "backend",
            "B",
            "n",
            "build ms",
            "flood ms",
            "stab1 ms",
            "stab2 ms",
            "cold reads",
            "warm hits",
        ],
    );
    for backend in ["model", "file"] {
        let tmp = TempDir::new("ef-file");
        let mut builder = IndexBuilder::new(Geometry::new(b));
        if backend == "file" {
            builder = builder.file_backed(tmp.path());
        }
        let t0 = Instant::now();
        let mut idx = builder.bulk(IoCounter::new(), &initial);
        let build_ms = t0.elapsed().as_secs_f64() * 1_000.0;

        let t0 = Instant::now();
        for op in &flood {
            match op {
                workloads::IntervalOp::Insert(iv) => idx.insert(iv.lo, iv.hi, iv.id),
                workloads::IntervalOp::Delete(iv) => idx.delete(iv.lo, iv.hi, iv.id),
                workloads::IntervalOp::Stab(_) => {}
            }
        }
        idx.flush_reorgs();
        let flood_ms = t0.elapsed().as_secs_f64() * 1_000.0;

        // First pass on an empty cache (all cold on the file backend),
        // second pass re-reads the same pages (warm).
        idx.clear_file_caches();
        let t0 = Instant::now();
        let got1 = idx.stab_batch(&stabs);
        let stab1_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        let t0 = Instant::now();
        let got2 = idx.stab_batch(&stabs);
        let stab2_ms = t0.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(got1, got2, "stab answers changed between passes");
        let (cold, warm) = idx.file_stats().unwrap_or((0, 0));
        t.row(vec![
            backend.to_string(),
            b.to_string(),
            n.to_string(),
            format!("{build_ms:.0}"),
            format!("{flood_ms:.0}"),
            format!("{stab1_ms:.1}"),
            format!("{stab2_ms:.1}"),
            cold.to_string(),
            warm.to_string(),
        ]);
    }
    vec![t]
}

/// Run every experiment in order.
pub fn all() -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(e0_bptree_reference());
    out.extend(e1_metablock_query());
    out.extend(e2_corner_structure());
    out.extend(e3_lower_bound());
    out.extend(e4_metablock_insert());
    out.extend(e5_class_simple());
    out.extend(e6_class_rc());
    out.extend(e7_pst());
    out.extend(e8_tessellation());
    out.extend(e9_interval());
    out.extend(e10_class_strategies());
    out.extend(e11_structure_shape());
    out.extend(e12_pst_vs_metablock());
    out.extend(e13_ablation());
    out.extend(e14_write_tuning());
    out.extend(eqb_query_batch());
    out.extend(eb_build());
    out.extend(ed_delete());
    out.extend(el_latency());
    out.extend(ec_throughput());
    out.extend(es_shard());
    out.extend(er_recovery());
    out.extend(ef_file());
    out
}
