//! # `ccix` — Indexing for Data Models with Constraints and Classes
//!
//! A faithful, I/O-accounted reproduction of Kanellakis, Ramaswamy, Vengroff
//! and Vitter, *Indexing for Data Models with Constraints and Classes*
//! (PODS'93; JCSS 52(3):589–612, 1996).
//!
//! This umbrella crate re-exports the workspace's layers:
//!
//! * [`extmem`] — the external-memory cost model (pages of `B` records, one
//!   I/O per page transfer) with exact counters;
//! * [`bptree`] — external B+-trees, the paper's one-dimensional yardstick;
//! * [`pst`] — priority search trees (in-core McCreight; external static
//!   B-PST of Lemma 4.1);
//! * [`core`] — **the paper's contribution**: the metablock tree for
//!   diagonal-corner queries (§3) and its 3-sided variant (§4), both fully
//!   dynamic — batched inserts and tombstone-based deletion (the paper's
//!   §5 open problem, closed here);
//! * [`interval`] — external dynamic interval management via the reduction
//!   of Proposition 2.2;
//! * [`class`] — class-hierarchy indexing: the range-tree method
//!   (Theorem 2.6) and the rake-and-contract composite (Theorem 4.7);
//! * [`constraint`] — the CQL layer of §2.1: generalized tuples/relations
//!   and one-dimensional indexing of constraints;
//! * [`serve`] — the epoch-snapshot serving layer: group-committed writes,
//!   lock-free concurrent snapshot readers, std-only TCP front end.
//!
//! ## Quickstart
//!
//! ```
//! use ccix::interval::IndexBuilder;
//! use ccix::extmem::{Geometry, IoCounter};
//!
//! // Index intervals (e.g. projections of generalized tuples onto an
//! // attribute) and answer intersection queries I/O-efficiently.
//! let counter = IoCounter::new();
//! let mut idx = IndexBuilder::new(Geometry::new(8)).open(counter);
//! idx.insert(2, 5, 100);
//! idx.insert(4, 9, 101);
//! idx.insert(7, 8, 102);
//! let mut hits = idx.intersecting(5, 7);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![100, 101, 102]);
//!
//! // Deletion — the paper's §5 open problem — rides the insert machinery
//! // as a tombstone and is visible immediately:
//! idx.delete(4, 9, 101);
//! assert_eq!(idx.intersecting(5, 7), vec![100, 102]);
//! idx.delete_batch(&[(2, 5, 100), (7, 8, 102)]);
//! assert!(idx.is_empty());
//! ```

// Compile the README's code blocks as doctests, so the quick-start
// snippet fails `cargo test --doc` (the CI docs leg) instead of rotting.
#[doc = include_str!("../README.md")]
#[doc(hidden)]
pub mod readme_doctests {}

pub use ccix_bptree as bptree;
pub use ccix_class as class;
pub use ccix_constraint as constraint;
pub use ccix_core as core;
pub use ccix_extmem as extmem;
pub use ccix_interval as interval;
pub use ccix_pst as pst;
pub use ccix_serve as serve;
